// Package cache is the engine's mid-tier query cache: the layer between
// the network server and the evaluation engines that makes repeated
// consolidations cheap. It holds two cooperating caches plus a
// singleflight group:
//
//   - ResultCache, a semantic result cache keyed on the executor's
//     normalized plan fingerprint, storing materialized row sets under a
//     cost-aware LRU (eviction prefers entries whose estimated I/O
//     savings per byte are smallest);
//   - ChunkCache, a decoded-chunk cache above the buffer pool that pins
//     hot decompressed chunks so repeated array probes skip the
//     chunk-offset decode;
//   - Group, a context-cancel-safe singleflight, so N concurrent
//     identical queries trigger one engine execution.
//
// Correctness is layered. Whole-object replacement (loads, rebuilds,
// in-place updates) is epoch-based: every entry is tagged with the
// ExecContext generation current when its data was read, and a probe
// with a newer epoch lazily discards it. Streaming ingest through the
// delta store is finer-grained: decoded-chunk entries additionally
// carry the chunk's delta version, so an ingest batch invalidates only
// the chunks it touched, and result-cache keys embed a version vector
// over the chunks a plan can see, so results stay hittable while
// unrelated chunks absorb writes. DropCaches clears content without
// bumping the generation — nothing changed, the caches are just cold.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// entry is one cached value with the bookkeeping the LRU needs.
type entry struct {
	key    string
	val    any
	bytes  int64
	weight float64 // estimated I/O saved per hit (page reads)
	epoch  uint64
}

// evictionSample bounds how many LRU-tail entries one eviction
// considers: among the sample, the entry with the least estimated I/O
// saved per byte goes first, so a huge cheap-to-recompute result cannot
// out-stay many small expensive ones merely by being recently touched.
const evictionSample = 5

// ResultCache is the semantic result cache: fingerprint -> materialized
// result, bounded by bytes, with cost-aware LRU eviction and epoch
// invalidation. Safe for concurrent use.
type ResultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element // -> *entry
	lru      *list.List               // front = most recently used

	hits, misses, evictions, invalidated *obs.Counter
}

// NewResultCache creates a result cache bounded by maxBytes,
// registering its counters (cache_result_*) in reg. Gauges over
// Bytes/Len are the caller's to register, so a disabled cache can read
// as zero.
func NewResultCache(maxBytes int64, reg *obs.Registry) *ResultCache {
	return &ResultCache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		hits: reg.Counter("cache_result_hits_total",
			"queries served from the semantic result cache"),
		misses: reg.Counter("cache_result_misses_total",
			"result cache probes that found no current entry"),
		evictions: reg.Counter("cache_result_evictions_total",
			"result cache entries evicted by the cost-aware LRU"),
		invalidated: reg.Counter("cache_result_invalidated_total",
			"result cache entries discarded for carrying an old epoch"),
	}
}

// Get returns the value cached under key if its epoch matches; an entry
// from an older epoch is discarded (lazy invalidation) and reads as a
// miss.
func (c *ResultCache) Get(key string, epoch uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		c.removeLocked(el)
		c.invalidated.Inc()
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return e.val, true
}

// Put stores val under key, tagged with the epoch its data was read
// under. bytes is the entry's memory estimate; weight is the estimated
// I/O (page reads) a hit saves, which drives eviction order. Values
// larger than a quarter of the budget are not cached — one giant result
// must not flush the whole working set.
func (c *ResultCache) Put(key string, val any, bytes int64, weight float64, epoch uint64) {
	if bytes > c.maxBytes/4 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	e := &entry{key: key, val: val, bytes: bytes, weight: weight, epoch: epoch}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += bytes
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		c.removeLocked(c.evictVictimLocked())
		c.evictions.Inc()
	}
}

// evictVictimLocked picks the eviction victim: among up to
// evictionSample entries from the LRU tail, the one saving the least
// estimated I/O per byte.
func (c *ResultCache) evictVictimLocked() *list.Element {
	victim := c.lru.Back()
	best := victim.Value.(*entry).density()
	el := victim.Prev()
	for i := 1; i < evictionSample && el != nil && el != c.lru.Front(); i++ {
		if d := el.Value.(*entry).density(); d < best {
			victim, best = el, d
		}
		el = el.Prev()
	}
	return victim
}

// density is the eviction score: estimated page reads saved per byte
// retained.
func (e *entry) density() float64 {
	if e.bytes <= 0 {
		return e.weight
	}
	return e.weight / float64(e.bytes)
}

func (c *ResultCache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// Clear discards every entry, keeping the counters: the cold-cache
// protocol (DropCaches) empties content without pretending the data
// changed.
func (c *ResultCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.bytes = 0
}

// Bytes reports the retained entry bytes.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len reports the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats is a point-in-time copy of one cache's counters.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Invalidated int64 `json:"invalidated"`
	Bytes       int64 `json:"bytes"`
	Entries     int64 `json:"entries"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		Evictions:   c.evictions.Value(),
		Invalidated: c.invalidated.Value(),
		Bytes:       c.bytes,
		Entries:     int64(c.lru.Len()),
	}
}
