// Package delta is the in-memory half of the HTAP ingest path: a
// per-chunk overlay store that writers append to without touching the
// chunk files, logged to a dedicated write-ahead file for crash
// recovery. Queries attach an immutable snapshot of the overlay to
// their array clone and merge it as chunks stream; a background
// compactor periodically folds cold deltas into the chunk-offset-
// compressed chunks and drains what it folded.
//
// Deltas are absolute cell states (set this cell to this value, or
// delete it), not arithmetic increments. That makes every replay and
// re-merge idempotent: folding a snapshot into the base and then
// merging the same snapshot over the folded base yields the same
// cells, which is what makes crash recovery (replay the whole delta
// WAL over whatever the last committed base is) and the post-
// compaction read path (chunks stay in the relational dirty filter
// forever) correct without any coordination.
package delta

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/chunk"
)

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("delta: store closed")

// Cell is one ingested cell state, addressed by chunk number and
// in-chunk offset.
type Cell struct {
	Chunk  int
	Offset uint32
	Value  int64
	Delete bool
}

// cellCost is the accounting estimate per overlay cell: the OverlayCell
// itself plus map/slice overhead. The budget is a throttle, not an
// allocator, so a round figure is fine.
const cellCost = 32

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	// Cells and Bytes describe the deltas currently awaiting compaction.
	Cells int64
	Bytes int64
	// DirtyChunks counts chunks with uncompacted deltas right now;
	// TouchedChunks counts chunks ever touched by ingest (the set the
	// relational dirty filter consults — it never shrinks).
	DirtyChunks   int
	TouchedChunks int
	// BudgetBytes is the backpressure threshold (0 = unlimited).
	BudgetBytes int64
}

// Store is the delta overlay store. All methods are safe for concurrent
// use; Apply blocks while the store is over its byte budget (waiting for
// a compaction to drain it) unless the context ends first.
type Store struct {
	mu   sync.Mutex
	cond *sync.Cond

	// chunks holds the live overlay: chunk number -> offset-sorted,
	// duplicate-free cell states. Every slice is immutable once stored
	// (Apply builds merged replacements), so Snapshot can hand the
	// slices to query clones with a shallow map copy.
	chunks map[int][]chunk.OverlayCell

	// versions counts ingest batches per chunk. A chunk's version never
	// resets — compaction does not change what a reader of that chunk
	// observes, so drained chunks keep their version and cache entries
	// tagged with it stay valid across the fold.
	versions map[int]uint64

	// touched is every chunk ever ingested into, surviving drains and —
	// via the catalog — restarts. Relational engines skip tuples falling
	// in touched chunks and re-aggregate those chunks from the array
	// instead, which is what keeps the three engines bit-identical
	// before and after any number of compactions.
	touched map[int]struct{}

	cells  int64
	bytes  int64
	budget int64

	wal    *walFile
	closed bool
}

// Open creates a delta store. walPath names the dedicated delta WAL
// ("" = in-memory only, no durability); if the file exists its batches
// are replayed into the store. budgetBytes, when positive, is the
// backpressure threshold for Apply.
func Open(walPath string, budgetBytes int64) (*Store, error) {
	s := &Store{
		chunks:   make(map[int][]chunk.OverlayCell),
		versions: make(map[int]uint64),
		touched:  make(map[int]struct{}),
		budget:   budgetBytes,
	}
	s.cond = sync.NewCond(&s.mu)
	if walPath == "" {
		return s, nil
	}
	w, batches, err := openWAL(walPath)
	if err != nil {
		return nil, err
	}
	s.wal = w
	for _, b := range batches {
		s.applyLocked(b)
	}
	return s, nil
}

// SeedTouched marks chunks as ever-touched, used at open to restore the
// dirty-filter set the catalog persisted at the last compaction commit.
func (s *Store) SeedTouched(chunks []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cn := range chunks {
		s.touched[cn] = struct{}{}
	}
}

// Apply ingests one batch of cell states, logging it to the delta WAL
// (fsynced) before it becomes visible. Within a batch, a later entry
// for the same cell wins. Apply blocks while the store is over its byte
// budget until a Drain frees room or ctx ends.
func (s *Store) Apply(ctx context.Context, cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.budget > 0 && s.bytes >= s.budget && !s.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Wake this waiter if the context ends while it sleeps; Drain
		// and Close broadcast on their own.
		stop := context.AfterFunc(ctx, s.cond.Broadcast)
		s.cond.Wait()
		stop()
	}
	if s.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.append(cells); err != nil {
			return err
		}
	}
	s.applyLocked(cells)
	return nil
}

// applyLocked folds one batch into the overlay. Slices already stored
// are never mutated: each touched chunk gets a freshly merged slice.
func (s *Store) applyLocked(cells []Cell) {
	byChunk := make(map[int][]chunk.OverlayCell)
	for _, c := range cells {
		byChunk[c.Chunk] = append(byChunk[c.Chunk], chunk.OverlayCell{
			Offset: c.Offset, Value: c.Value, Delete: c.Delete,
		})
	}
	for cn, batch := range byChunk {
		// Stable sort keeps batch order among equal offsets, then keep
		// the last state per offset (last write wins).
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Offset < batch[j].Offset })
		dedup := batch[:0]
		for i, c := range batch {
			if i+1 < len(batch) && batch[i+1].Offset == c.Offset {
				continue
			}
			dedup = append(dedup, c)
		}
		prev := s.chunks[cn]
		next := chunk.MergeOverlayCells(prev, dedup)
		s.chunks[cn] = next
		s.cells += int64(len(next) - len(prev))
		s.bytes += int64(len(next)-len(prev)) * cellCost
		s.versions[cn]++
		s.touched[cn] = struct{}{}
	}
}

// Snapshot returns the overlay (a shallow map copy over immutable
// slices), the per-chunk version vector, and the sorted ever-touched
// chunk list, captured atomically. The overlay map is attached to a
// query clone's chunk store; the versions tag its decoded-chunk cache
// view; the touched list drives the relational dirty filter.
func (s *Store) Snapshot() (map[int][]chunk.OverlayCell, map[int]uint64, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ov map[int][]chunk.OverlayCell
	if len(s.chunks) > 0 {
		ov = make(map[int][]chunk.OverlayCell, len(s.chunks))
		for cn, cells := range s.chunks {
			ov[cn] = cells
		}
	}
	versions := make(map[int]uint64, len(s.versions))
	for cn, v := range s.versions {
		versions[cn] = v
	}
	touched := make([]int, 0, len(s.touched))
	for cn := range s.touched {
		touched = append(touched, cn)
	}
	sort.Ints(touched)
	return ov, versions, touched
}

// Versions returns the per-chunk version vector and the sorted
// ever-touched chunk list (for cache-key computation, without copying
// the overlay itself).
func (s *Store) Versions() (map[int]uint64, []int) {
	_, versions, touched := s.Snapshot()
	return versions, touched
}

// Touched returns the sorted list of chunks ever ingested into, for
// persisting in the catalog at compaction commits.
func (s *Store) Touched() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.touched))
	for cn := range s.touched {
		out = append(out, cn)
	}
	sort.Ints(out)
	return out
}

// Drain removes the overlay of every chunk whose version still matches
// snapVersions — i.e. exactly what the compactor folded. A chunk
// ingested into after the snapshot keeps its whole current slice:
// re-merging it over the folded base is idempotent, so nothing is
// lost and nothing is double-counted. The delta WAL is rewritten to
// hold only what remains, and blocked writers are woken.
func (s *Store) Drain(snapVersions map[int]uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for cn, cells := range s.chunks {
		if s.versions[cn] != snapVersions[cn] {
			continue
		}
		s.cells -= int64(len(cells))
		s.bytes -= int64(len(cells)) * cellCost
		delete(s.chunks, cn)
	}
	var err error
	if s.wal != nil {
		err = s.wal.rewrite(s.chunks)
	}
	s.cond.Broadcast()
	return err
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Cells:         s.cells,
		Bytes:         s.bytes,
		DirtyChunks:   len(s.chunks),
		TouchedChunks: len(s.touched),
		BudgetBytes:   s.budget,
	}
}

// Close closes the delta WAL and fails pending and future Applies.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}
