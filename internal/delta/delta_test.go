package delta

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/chunk"
)

func TestApplySnapshotDrain(t *testing.T) {
	s, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Last write wins within a batch.
	if err := s.Apply(ctx, []Cell{
		{Chunk: 2, Offset: 7, Value: 10},
		{Chunk: 2, Offset: 7, Value: 11},
		{Chunk: 5, Offset: 0, Value: 3},
	}); err != nil {
		t.Fatal(err)
	}
	ov, versions, touched := s.Snapshot()
	if got := ov[2]; !reflect.DeepEqual(got, []chunk.OverlayCell{{Offset: 7, Value: 11}}) {
		t.Fatalf("chunk 2 overlay = %v", got)
	}
	if versions[2] != 1 || versions[5] != 1 {
		t.Fatalf("versions = %v", versions)
	}
	if !reflect.DeepEqual(touched, []int{2, 5}) {
		t.Fatalf("touched = %v", touched)
	}

	// A write after the snapshot keeps its chunk across Drain; the
	// unchanged chunk drains.
	if err := s.Apply(ctx, []Cell{{Chunk: 2, Offset: 9, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(versions); err != nil {
		t.Fatal(err)
	}
	ov2, _, touched2 := s.Snapshot()
	if _, ok := ov2[5]; ok {
		t.Fatal("chunk 5 survived drain")
	}
	if got := ov2[2]; len(got) != 2 {
		t.Fatalf("chunk 2 after drain = %v (want both cells kept)", got)
	}
	if !reflect.DeepEqual(touched2, []int{2, 5}) {
		t.Fatalf("touched after drain = %v (must persist)", touched2)
	}
	st := s.Stats()
	if st.Cells != 2 || st.DirtyChunks != 1 || st.TouchedChunks != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALReplayAndRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.deltawal")
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Apply(ctx, []Cell{{Chunk: 1, Offset: 3, Value: 42}, {Chunk: 4, Offset: 0, Value: 7, Delete: true}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(ctx, []Cell{{Chunk: 1, Offset: 3, Value: 43}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	ov, versions, _ := re.Snapshot()
	if got := ov[1]; !reflect.DeepEqual(got, []chunk.OverlayCell{{Offset: 3, Value: 43}}) {
		t.Fatalf("replayed chunk 1 = %v", got)
	}
	if got := ov[4]; !reflect.DeepEqual(got, []chunk.OverlayCell{{Offset: 0, Value: 7, Delete: true}}) {
		t.Fatalf("replayed chunk 4 = %v", got)
	}
	if versions[1] != 2 {
		t.Fatalf("replayed versions = %v", versions)
	}

	// Drain chunk 4 only; the rewritten WAL must replay just chunk 1.
	snap := map[int]uint64{4: versions[4]}
	if err := re.Drain(snap); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	ov2, _, _ := re2.Snapshot()
	if _, ok := ov2[4]; ok {
		t.Fatal("drained chunk 4 came back after rewrite")
	}
	if got := ov2[1]; !reflect.DeepEqual(got, []chunk.OverlayCell{{Offset: 3, Value: 43}}) {
		t.Fatalf("rewritten chunk 1 = %v", got)
	}
	re2.Close()
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.deltawal")
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Apply(ctx, []Cell{{Chunk: 0, Offset: 1, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(ctx, []Cell{{Chunk: 0, Offset: 2, Value: 6}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the last record: chop off its final byte.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	ov, _, _ := re.Snapshot()
	if got := ov[0]; !reflect.DeepEqual(got, []chunk.OverlayCell{{Offset: 1, Value: 5}}) {
		t.Fatalf("after torn tail, chunk 0 = %v (want only the first batch)", got)
	}
	re.Close()
}

func TestBackpressure(t *testing.T) {
	s, err := Open("", 2*cellCost)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Fill to the budget; the store admits the batch that crosses it.
	if err := s.Apply(ctx, []Cell{{Chunk: 0, Offset: 0, Value: 1}, {Chunk: 0, Offset: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}

	// A further Apply must block until a Drain frees room.
	_, versions, _ := s.Snapshot()
	done := make(chan error, 1)
	go func() {
		done <- s.Apply(ctx, []Cell{{Chunk: 1, Offset: 0, Value: 3}})
	}()
	select {
	case err := <-done:
		t.Fatalf("over-budget Apply returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := s.Drain(versions); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// And a canceled context unblocks a waiter with its error.
	if err := s.Apply(ctx, []Cell{{Chunk: 2, Offset: 0, Value: 1}, {Chunk: 2, Offset: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		done <- s.Apply(cctx, []Cell{{Chunk: 3, Offset: 0, Value: 4}})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled Apply = %v", err)
	}
	s.Close()
}
