package delta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/chunk"
)

// The delta store keeps its own write-ahead file rather than sharing
// the page WAL: the page WAL is checkpoint-truncated on every commit,
// while delta batches must survive until the compaction that folds them
// commits. The format is a flat sequence of self-delimiting records:
//
//	[u32 payload length][u32 CRC32-C of payload][payload]
//	payload: uvarint cell count, then per cell
//	         uvarint chunk, uvarint offset, varint value, u8 delete
//
// Replay stops cleanly at the first short or corrupt record (a crash
// mid-append), truncating the tail — every fully fsynced batch before
// it is intact because records are appended and synced in order.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type walFile struct {
	path string
	f    *os.File
}

// openWAL opens (creating if absent) the delta WAL and replays its
// batches. The file is truncated after the last valid record.
func openWAL(path string) (*walFile, [][]Cell, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var batches [][]Cell
	valid := 0
	for len(data)-valid >= 8 {
		n := binary.LittleEndian.Uint32(data[valid:])
		crc := binary.LittleEndian.Uint32(data[valid+4:])
		if uint64(len(data)-valid-8) < uint64(n) {
			break // torn tail
		}
		payload := data[valid+8 : valid+8+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			break // corrupt tail
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			break
		}
		batches = append(batches, batch)
		valid += 8 + int(n)
	}
	if valid != len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &walFile{path: path, f: f}, batches, nil
}

func encodeBatch(cells []Cell) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(cells)))
	for _, c := range cells {
		payload = binary.AppendUvarint(payload, uint64(c.Chunk))
		payload = binary.AppendUvarint(payload, uint64(c.Offset))
		payload = binary.AppendVarint(payload, c.Value)
		if c.Delete {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
	}
	rec := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, crcTable))
	return append(rec, payload...)
}

func decodeBatch(payload []byte) ([]Cell, error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return nil, fmt.Errorf("delta: corrupt batch header")
	}
	payload = payload[sz:]
	cells := make([]Cell, 0, n)
	for i := uint64(0); i < n; i++ {
		cn, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("delta: corrupt cell chunk")
		}
		payload = payload[sz:]
		off, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("delta: corrupt cell offset")
		}
		payload = payload[sz:]
		v, sz := binary.Varint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("delta: corrupt cell value")
		}
		payload = payload[sz:]
		if len(payload) < 1 {
			return nil, fmt.Errorf("delta: corrupt cell flag")
		}
		del := payload[0] != 0
		payload = payload[1:]
		cells = append(cells, Cell{Chunk: int(cn), Offset: uint32(off), Value: v, Delete: del})
	}
	return cells, nil
}

// append logs one batch and fsyncs before returning: a batch is visible
// to queries only after it is durable.
func (w *walFile) append(cells []Cell) error {
	if _, err := w.f.Write(encodeBatch(cells)); err != nil {
		return err
	}
	return w.f.Sync()
}

// rewrite replaces the WAL with one batch per remaining dirty chunk,
// via a temp file renamed into place so a crash leaves either the old
// or the new log, never a mix.
func (w *walFile) rewrite(remaining map[int][]chunk.OverlayCell) error {
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	chunks := make([]int, 0, len(remaining))
	for cn := range remaining {
		chunks = append(chunks, cn)
	}
	sort.Ints(chunks)
	for _, cn := range chunks {
		batch := make([]Cell, 0, len(remaining[cn]))
		for _, c := range remaining[cn] {
			batch = append(batch, Cell{Chunk: cn, Offset: c.Offset, Value: c.Value, Delete: c.Delete})
		}
		if _, err := f.Write(encodeBatch(batch)); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := w.f
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return err
	}
	w.f = nf
	return old.Close()
}

func (w *walFile) close() error { return w.f.Close() }
