package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry over HTTP: Prometheus text format by
// default (what a scraper expects), JSON when the request asks for it
// with ?format=json or an Accept: application/json header.
//
//	mux := http.NewServeMux()
//	mux.Handle("/metrics", obs.Handler(db.Registry()))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			req.Header.Get("Accept") == "application/json"
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
