package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "widgets")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("widgets_total", "widgets"); again != c {
		t.Fatal("find-or-create returned a different counter")
	}

	var backing int64 = 42
	cf := r.CounterFunc("external_total", "external", func() int64 { return backing })
	cf.Add(99) // no-op on callback counters
	if got := cf.Value(); got != 42 {
		t.Fatalf("counter func = %d, want 42", got)
	}

	g := r.Gauge("level", "level")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	gf := r.GaugeFunc("ratio", "", func() float64 { return 0.75 })
	if got := gf.Value(); got != 0.75 {
		t.Fatalf("gauge func = %g, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.001+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot histograms = %d", len(s.Histograms))
	}
	hv := s.Histograms[0]
	// Cumulative: le=0.01 -> 1, le=0.1 -> 3, le=1 -> 4, +Inf -> 5.
	want := []int64{1, 3, 4, 5}
	for i, w := range want {
		if hv.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, hv.Buckets[i], w, hv.Buckets)
		}
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatalf("count after duration = %d", h.Count())
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
				r.Counter("n_total", "").Add(0) // concurrent registration
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Add(1)
	r.Gauge("g", "a gauge").Set(1.5)
	r.Histogram("h_seconds", "hist", []float64{0.5}).Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total first",
		"# TYPE a_total counter",
		"a_total 1",
		"b_total 2",
		"# TYPE g gauge",
		"g 1.5",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.5"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_sum 0.25",
		"h_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a_total before b_total.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Add(7)
	r.Gauge("y", "").Set(3)
	s := r.Snapshot()
	if s.Counter("x_total") != 7 {
		t.Fatalf("Counter lookup = %d", s.Counter("x_total"))
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	if s.Gauge("y") != 3 {
		t.Fatalf("Gauge lookup = %g", s.Gauge("y"))
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests").Add(3)

	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "req_total 3") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if s.Counter("req_total") != 3 {
		t.Fatalf("json counter = %d", s.Counter("req_total"))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace("query")
	sp := tr.Root.Child("plan")
	sp.End()
	run := tr.Root.Child("execute")
	run.Set("chunks", 12)
	run.End()
	tr.End()

	if len(tr.Root.Children) != 2 {
		t.Fatalf("children = %d", len(tr.Root.Children))
	}
	if tr.Root.Duration <= 0 {
		t.Fatal("root duration not set")
	}
	out := tr.String()
	for _, want := range []string{"query", "plan", "execute", "chunks=12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, out)
		}
	}
	// End is idempotent: duration fixed at first End.
	d := run.Duration
	run.End()
	if run.Duration != d {
		t.Fatal("End not idempotent")
	}
}
