package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Query IDs name one query execution end to end: the client (or the
// session, for embedded use) mints one, the wire frame carries it, the
// executor stamps it into the trace, the slow-query log, the flight
// recorder, and pprof labels. The format is <instance>-<seq>: an
// 8-hex-digit per-process random prefix so IDs from different clients
// never collide, and an 8-hex-digit sequence so IDs sort in issue
// order within a process.

var (
	qidPrefix = func() uint32 {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the start time; uniqueness degrades from
			// cryptographic to merely unlikely-to-collide.
			return uint32(time.Now().UnixNano())
		}
		return binary.BigEndian.Uint32(b[:])
	}()
	qidSeq atomic.Uint64
)

// NewQueryID mints a process-unique query ID, e.g. "3f9ac2d1-00000017".
func NewQueryID() string {
	return fmt.Sprintf("%08x-%08x", qidPrefix, uint32(qidSeq.Add(1)))
}

// QueryTag is the per-query trace context handed across layer
// boundaries via context.Context. The server builds one per query frame
// (carrying the client-minted ID and any admission wait it measured);
// the executor reads it, or mints a fresh tag for embedded callers.
type QueryTag struct {
	// ID is the query ID. Empty means the executor mints one.
	ID string
	// TraceOn asks the executor for the fully sampled span tree, set
	// when the session has TRACE on.
	TraceOn bool
	// AdmissionWait is the time the query spent queued for an
	// admission slot before execution began, measured by the server.
	AdmissionWait time.Duration
}

type queryTagKey struct{}

// ContextWithQueryTag attaches a query tag to ctx.
func ContextWithQueryTag(ctx context.Context, t *QueryTag) context.Context {
	return context.WithValue(ctx, queryTagKey{}, t)
}

// QueryTagFromContext returns the query tag attached to ctx, or nil.
func QueryTagFromContext(ctx context.Context) *QueryTag {
	t, _ := ctx.Value(queryTagKey{}).(*QueryTag)
	return t
}

// Sampler decides which queries get fine-grained spans: 1 in every N,
// counted atomically, so the decision is one atomic add — zero
// allocations, safe on the per-query hot path. TRACE on bypasses the
// sampler entirely (an explicitly traced query is always sampled).
type Sampler struct {
	every atomic.Uint64
	n     atomic.Uint64
}

// NewSampler creates a sampler that samples 1 in every queries;
// every <= 0 never samples, 1 samples everything.
func NewSampler(every int) *Sampler {
	s := &Sampler{}
	s.SetEvery(every)
	return s
}

// SetEvery changes the sampling rate; every <= 0 disables sampling.
func (s *Sampler) SetEvery(every int) {
	if every < 0 {
		every = 0
	}
	s.every.Store(uint64(every))
}

// Every reports the current rate (0 = never).
func (s *Sampler) Every() int { return int(s.every.Load()) }

// Sample reports whether this query should collect fine-grained spans.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	e := s.every.Load()
	if e == 0 {
		return false
	}
	// 1%e makes the first query of each window the sampled one (and
	// degenerates correctly for e==1, where every query samples).
	return s.n.Add(1)%e == 1%e
}
