package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are rendered with
// %v; keep them small (counters, names), not payloads.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed region of a query's execution. Spans form a tree
// under a Trace; children are added with Child and closed with End.
// A span is written by the goroutine that created it; the mutex only
// guards the child list so sibling spans may be produced concurrently
// (parallel plan stages).
//
// Every method is a no-op on a nil receiver, and Child on a nil span
// returns nil. Fine-grained instrumentation can therefore hold a nil
// span when the trace is unsampled and pay nothing — no allocation, no
// clock read (see Trace.Fine).
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	mu sync.Mutex
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// ChildAt records an already-measured region as a closed child span.
// Layers that time a wait themselves (server admission, per-worker busy
// time) use it to graft the measurement into the tree after the fact.
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, Duration: d}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
}

// Set attaches one key/value annotation.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Trace is the span tree of one query execution, attached to the
// QueryResult so callers can see where the time went.
//
// Coarse spans (plan, execute, sort, the cache probe) are recorded on
// every trace; fine-grained spans (per-worker breakdowns) only when the
// trace is sampled — see Fine.
type Trace struct {
	Root *Span `json:"root"`

	// sampled gates fine-grained spans. It is set once, before the
	// query fans out to workers, and only read afterwards.
	sampled bool
}

// NewTrace opens a trace whose root span starts now.
func NewTrace(name string) *Trace {
	return &Trace{Root: &Span{Name: name, Start: time.Now()}}
}

// SetSampled marks the trace for fine-grained span collection. Must be
// called before the query fans out (it is not synchronized).
func (t *Trace) SetSampled(on bool) {
	if t != nil {
		t.sampled = on
	}
}

// Sampled reports whether fine-grained spans are being collected.
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// Fine starts a child span of parent only when the trace is sampled;
// otherwise it returns nil, and the nil span absorbs Set/End/Child
// calls without allocating. This is the zero-cost gate for spans too
// numerous to record on every query.
func (t *Trace) Fine(parent *Span, name string) *Span {
	if t == nil || !t.sampled {
		return nil
	}
	return parent.Child(name)
}

// End closes the root span.
func (t *Trace) End() { t.Root.End() }

// String renders the span tree, one line per span, indented by depth:
//
//	query 1.2ms
//	  plan 80µs
//	  execute 1.1ms [chunks=12]
func (t *Trace) String() string {
	var b strings.Builder
	writeSpan(&b, t.Root, 0)
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %s", s.Name, s.Duration.Round(time.Microsecond))
	if len(s.Attrs) > 0 {
		parts := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
		}
		fmt.Fprintf(b, " [%s]", strings.Join(parts, " "))
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}
