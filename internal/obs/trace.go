package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are rendered with
// %v; keep them small (counters, names), not payloads.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed region of a query's execution. Spans form a tree
// under a Trace; children are added with Child and closed with End.
// A span is written by the goroutine that created it; the mutex only
// guards the child list so sibling spans may be produced concurrently
// (parallel plan stages).
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	mu sync.Mutex
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent.
func (s *Span) End() {
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
}

// Set attaches one key/value annotation.
func (s *Span) Set(key string, value any) {
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Trace is the span tree of one query execution, attached to the
// QueryResult so callers can see where the time went.
type Trace struct {
	Root *Span `json:"root"`
}

// NewTrace opens a trace whose root span starts now.
func NewTrace(name string) *Trace {
	return &Trace{Root: &Span{Name: name, Start: time.Now()}}
}

// End closes the root span.
func (t *Trace) End() { t.Root.End() }

// String renders the span tree, one line per span, indented by depth:
//
//	query 1.2ms
//	  plan 80µs
//	  execute 1.1ms [chunks=12]
func (t *Trace) String() string {
	var b strings.Builder
	writeSpan(&b, t.Root, 0)
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %s", s.Name, s.Duration.Round(time.Microsecond))
	if len(s.Attrs) > 0 {
		parts := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
		}
		fmt.Fprintf(b, " [%s]", strings.Join(parts, " "))
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}
