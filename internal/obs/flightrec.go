package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// QueryProfile is one completed query's flight-recorder record: the
// fixed-size summary that survives after the result (and any trace) is
// gone. Records are immutable once handed to FlightRecorder.Record.
type QueryProfile struct {
	// Seq is the recorder-assigned record number, ascending in
	// completion order. Filled by Record.
	Seq uint64 `json:"seq"`

	QueryID     string `json:"query_id"`
	SQL         string `json:"sql,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"` // normalized plan fingerprint hash
	Plan        string `json:"plan,omitempty"`
	Engine      string `json:"engine,omitempty"`
	Degree      int    `json:"parallel_degree,omitempty"`

	CacheHit   bool   `json:"cache_hit"`
	CacheEpoch uint64 `json:"cache_epoch,omitempty"`

	Rows          int     `json:"rows"`
	EstIO         float64 `json:"est_io,omitempty"`
	EstRows       int64   `json:"est_rows,omitempty"`
	PhysicalReads uint64  `json:"physical_reads"`
	LogicalReads  uint64  `json:"logical_reads"`
	ArenaBytes    int64   `json:"arena_bytes,omitempty"`

	Start time.Time     `json:"start"`
	Wall  time.Duration `json:"wall_ns"`

	// Wait breakdown: where the wall time went. AdmissionWait is the
	// server-side queue for a slot, CacheWait the result-cache probe
	// plus any singleflight-follower wait, Plan/Exec/Sort the executor
	// phases. The parts need not sum to Wall (parse and framing are
	// uncounted).
	AdmissionWait time.Duration `json:"admission_wait_ns,omitempty"`
	CacheWait     time.Duration `json:"cache_wait_ns,omitempty"`
	PlanTime      time.Duration `json:"plan_ns,omitempty"`
	ExecTime      time.Duration `json:"exec_ns,omitempty"`
	SortTime      time.Duration `json:"sort_ns,omitempty"`

	Sampled bool   `json:"sampled,omitempty"` // fine-grained spans were collected
	Err     string `json:"error,omitempty"`
}

// FlightRecorder keeps the last N query profiles in a fixed-size ring
// plus the K slowest seen since startup. The ring is lock-free: one
// atomic increment claims a slot, one atomic pointer store publishes
// the record, and readers snapshot slots without blocking writers. The
// top-K set takes a mutex, but only when a query is slow enough to
// belong in it (an atomic threshold check skips the lock otherwise).
type FlightRecorder struct {
	ring []atomic.Pointer[QueryProfile]
	seq  atomic.Uint64

	topK    int
	slowBar atomic.Int64 // Wall of the K-th slowest; entry fee for the lock
	mu      sync.Mutex   // guards slowest
	slowest []*QueryProfile
}

// DefaultFlightRecorderSize is the ring capacity used by databases that
// do not configure one.
const DefaultFlightRecorderSize = 256

// DefaultFlightRecorderTopK is the number of slowest queries retained
// beyond the ring.
const DefaultFlightRecorderTopK = 16

// NewFlightRecorder creates a recorder holding the last size profiles
// and the topK slowest ever. size and topK are clamped to at least 1.
func NewFlightRecorder(size, topK int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	if topK < 1 {
		topK = 1
	}
	return &FlightRecorder{
		ring: make([]atomic.Pointer[QueryProfile], size),
		topK: topK,
	}
}

// Record publishes a completed query's profile. p must not be mutated
// afterwards. Safe for concurrent use; nil recorders and nil profiles
// are ignored.
func (f *FlightRecorder) Record(p *QueryProfile) {
	if f == nil || p == nil {
		return
	}
	seq := f.seq.Add(1)
	p.Seq = seq
	f.ring[(seq-1)%uint64(len(f.ring))].Store(p)

	// Top-K: skip the lock unless this query beats the current bar.
	if int64(p.Wall) <= f.slowBar.Load() {
		return
	}
	f.mu.Lock()
	f.slowest = append(f.slowest, p)
	sort.Slice(f.slowest, func(i, j int) bool { return f.slowest[i].Wall > f.slowest[j].Wall })
	if len(f.slowest) > f.topK {
		f.slowest = f.slowest[:f.topK]
	}
	if len(f.slowest) == f.topK {
		f.slowBar.Store(int64(f.slowest[f.topK-1].Wall))
	}
	f.mu.Unlock()
}

// Recent returns up to n profiles, most recent first. n <= 0 means the
// whole ring. Slots being overwritten concurrently are simply skipped —
// every returned profile is complete and internally consistent.
func (f *FlightRecorder) Recent(n int) []*QueryProfile {
	if f == nil {
		return nil
	}
	size := uint64(len(f.ring))
	if n <= 0 || uint64(n) > size {
		n = int(size)
	}
	latest := f.seq.Load()
	out := make([]*QueryProfile, 0, n)
	for i := latest; i > 0 && len(out) < n && latest-i < size; i-- {
		p := f.ring[(i-1)%size].Load()
		// A slot may already hold a record newer than the one we
		// walked to (a writer lapped us); the Seq check drops it.
		if p != nil && p.Seq == i {
			out = append(out, p)
		}
	}
	return out
}

// Slowest returns the retained top-K slowest queries, slowest first.
func (f *FlightRecorder) Slowest() []*QueryProfile {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := append([]*QueryProfile(nil), f.slowest...)
	f.mu.Unlock()
	return out
}

// Profile finds a query by ID, searching the ring first, then the
// slowest set. Returns nil when the record has aged out.
func (f *FlightRecorder) Profile(id string) *QueryProfile {
	if f == nil {
		return nil
	}
	for _, p := range f.Recent(0) {
		if p.QueryID == id {
			return p
		}
	}
	for _, p := range f.Slowest() {
		if p.QueryID == id {
			return p
		}
	}
	return nil
}

// Handler serves the recorder as JSON, the /debug/queries endpoint:
//
//	GET /debug/queries          -> {"recent": [...], "slowest": [...]}
//	GET /debug/queries?n=10     -> only the 10 most recent
//	GET /debug/queries?id=<qid> -> the one profile, or 404
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := req.URL.Query().Get("id"); id != "" {
			p := f.Profile(id)
			if p == nil {
				http.Error(w, "no such query", http.StatusNotFound)
				return
			}
			enc.Encode(p)
			return
		}
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			n, _ = strconv.Atoi(s)
		}
		enc.Encode(struct {
			Recent  []*QueryProfile `json:"recent"`
			Slowest []*QueryProfile `json:"slowest"`
		}{f.Recent(n), f.Slowest()})
	})
}
