package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewQueryIDFormatAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewQueryID()
		if len(id) != 17 || id[8] != '-' {
			t.Fatalf("bad query ID %q, want <8 hex>-<8 hex>", id)
		}
		if seen[id] {
			t.Fatalf("duplicate query ID %q", id)
		}
		seen[id] = true
	}
}

func TestQueryTagContext(t *testing.T) {
	if QueryTagFromContext(context.Background()) != nil {
		t.Fatal("tag from bare context should be nil")
	}
	tag := &QueryTag{ID: "abc-123", TraceOn: true, AdmissionWait: time.Millisecond}
	ctx := ContextWithQueryTag(context.Background(), tag)
	if got := QueryTagFromContext(ctx); got != tag {
		t.Fatalf("tag round-trip = %+v, want %+v", got, tag)
	}
}

func TestSamplerRates(t *testing.T) {
	count := func(s *Sampler, n int) int {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Sample() {
				hits++
			}
		}
		return hits
	}
	if got := count(NewSampler(1), 100); got != 100 {
		t.Fatalf("every=1 sampled %d/100", got)
	}
	if got := count(NewSampler(0), 100); got != 0 {
		t.Fatalf("every=0 sampled %d/100", got)
	}
	if got := count(NewSampler(4), 400); got != 100 {
		t.Fatalf("every=4 sampled %d/400, want 100", got)
	}
	s := NewSampler(-3) // negative clamps to never
	if s.Every() != 0 || s.Sample() {
		t.Fatal("negative rate should disable sampling")
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Fatal("nil sampler should never sample")
	}
}

func TestNilSpanNoops(t *testing.T) {
	var s *Span
	s.End()
	s.Set("k", 1)
	if s.Child("x") != nil {
		t.Fatal("Child on nil span should return nil")
	}
	if s.ChildAt("x", time.Time{}, time.Second) != nil {
		t.Fatal("ChildAt on nil span should return nil")
	}

	tr := NewTrace("q")
	if tr.Sampled() {
		t.Fatal("new trace should be unsampled")
	}
	if tr.Fine(tr.Root, "fine") != nil {
		t.Fatal("Fine on an unsampled trace should return nil")
	}
	tr.SetSampled(true)
	fine := tr.Fine(tr.Root, "fine")
	if fine == nil {
		t.Fatal("Fine on a sampled trace should create a span")
	}
	fine.End()
	if !strings.Contains(tr.String(), "fine") {
		t.Fatalf("rendered trace missing fine span:\n%s", tr.String())
	}
}

// TestUnsampledTracingZeroAlloc is the allocation gate for the hot
// path: with the trace unsampled, the sampler check plus every
// fine-span operation must cost zero heap allocations.
func TestUnsampledTracingZeroAlloc(t *testing.T) {
	tr := NewTrace("q")
	s := NewSampler(0)
	allocs := testing.AllocsPerRun(200, func() {
		if s.Sample() {
			t.Fatal("sampler disabled but sampled")
		}
		f := tr.Fine(tr.Root, "hot")
		f.Set("rows", 1)
		f.Child("inner").End()
		f.ChildAt("measured", time.Time{}, time.Millisecond)
		f.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled tracing allocates %.1f/op, want 0", allocs)
	}
}

func TestChildAtGraftsClosedSpan(t *testing.T) {
	tr := NewTrace("q")
	start := time.Now().Add(-5 * time.Millisecond)
	sp := tr.Root.ChildAt("admission-wait", start, 5*time.Millisecond)
	if sp == nil || sp.Duration != 5*time.Millisecond {
		t.Fatalf("ChildAt = %+v", sp)
	}
	sp.End() // idempotent: must not overwrite the measured duration
	if sp.Duration != 5*time.Millisecond {
		t.Fatalf("End overwrote measured duration: %v", sp.Duration)
	}
	if !strings.Contains(tr.String(), "admission-wait 5ms") {
		t.Fatalf("render missing grafted span:\n%s", tr.String())
	}
}

func TestFlightRecorderRingTopKProfile(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	for i := 1; i <= 10; i++ {
		fr.Record(&QueryProfile{
			QueryID: fmt.Sprintf("q-%d", i),
			Wall:    time.Duration(i) * time.Millisecond,
		})
	}
	rec := fr.Recent(0)
	if len(rec) != 4 {
		t.Fatalf("Recent(0) = %d profiles, want 4 (ring size)", len(rec))
	}
	for i, p := range rec {
		if want := fmt.Sprintf("q-%d", 10-i); p.QueryID != want {
			t.Fatalf("Recent[%d] = %s, want %s", i, p.QueryID, want)
		}
	}
	if got := fr.Recent(2); len(got) != 2 || got[0].QueryID != "q-10" {
		t.Fatalf("Recent(2) = %+v", got)
	}
	slow := fr.Slowest()
	if len(slow) != 2 || slow[0].QueryID != "q-10" || slow[1].QueryID != "q-9" {
		t.Fatalf("Slowest = %+v", slow)
	}
	if fr.Profile("q-10") == nil || fr.Profile("q-7") == nil {
		t.Fatal("Profile should find ring entries")
	}
	if fr.Profile("q-1") != nil {
		t.Fatal("q-1 aged out of the ring and is not in the top-K")
	}
	if fr.Profile("nope") != nil {
		t.Fatal("unknown ID should return nil")
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	for i := 1; i <= 3; i++ {
		fr.Record(&QueryProfile{QueryID: fmt.Sprintf("q-%d", i), Wall: time.Duration(i) * time.Millisecond})
	}
	h := fr.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries", nil))
	var page struct {
		Recent  []*QueryProfile `json:"recent"`
		Slowest []*QueryProfile `json:"slowest"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(page.Recent) != 3 || len(page.Slowest) != 2 {
		t.Fatalf("page = %d recent / %d slowest", len(page.Recent), len(page.Slowest))
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?n=1", nil))
	page.Recent = nil
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil || len(page.Recent) != 1 {
		t.Fatalf("?n=1 returned %d recent (err %v)", len(page.Recent), err)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?id=q-2", nil))
	var one QueryProfile
	if err := json.Unmarshal(rr.Body.Bytes(), &one); err != nil || one.QueryID != "q-2" {
		t.Fatalf("?id=q-2 = %+v (err %v)", one, err)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?id=zzz", nil))
	if rr.Code != 404 {
		t.Fatalf("unknown id status = %d, want 404", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/queries", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rr.Code)
	}
}

// TestFlightRecorderConcurrent hammers the ring from writer goroutines
// while readers scrape Recent, Slowest, Profile, and the HTTP handler —
// the -race stress for the lock-free ring.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32, 4)
	const writers, perWriter, readers = 4, 500, 4

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fr.Record(&QueryProfile{
					QueryID: fmt.Sprintf("w%d-%d", w, i),
					Wall:    time.Duration(i%64) * time.Millisecond,
				})
			}
		}(w)
	}
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := fr.Handler()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, p := range fr.Recent(0) {
					if p.QueryID == "" {
						t.Error("incomplete profile escaped the ring")
						return
					}
				}
				fr.Slowest()
				fr.Profile("w0-1")
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries", nil))
			}
		}()
	}
	// Writers finish first; then release the readers.
	go func() {
		for fr.seq.Load() < writers*perWriter {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	wg.Wait()

	if got := fr.seq.Load(); got != writers*perWriter {
		t.Fatalf("recorded %d profiles, want %d", got, writers*perWriter)
	}
	if len(fr.Recent(0)) != 32 {
		t.Fatalf("final ring holds %d, want 32", len(fr.Recent(0)))
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 50 observations in (0,1], 50 in (1,2]: the median sits at the
	// boundary and p99 inside the second bucket.
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 1.01 {
		t.Fatalf("p50 = %g, want ~1", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 1 || p99 > 2 {
		t.Fatalf("p99 = %g, want in (1,2]", p99)
	}
	// Observations beyond the last finite bound land in +Inf; quantiles
	// there report the highest finite bound rather than infinity.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	if p99 := h.Quantile(0.99); p99 != 8 {
		t.Fatalf("+Inf-bucket p99 = %g, want 8 (highest finite bound)", p99)
	}

	// The snapshot exposition carries the same estimates.
	s := r.Snapshot()
	for _, hv := range s.Histograms {
		if hv.Name != "h" {
			continue
		}
		if hv.P50 <= 0 || hv.P95 <= 0 || hv.P99 != 8 {
			t.Fatalf("snapshot percentiles = %+v", hv)
		}
		return
	}
	t.Fatal("histogram missing from snapshot")
}
