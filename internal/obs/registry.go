// Package obs is the engine's observability layer: a lock-cheap metrics
// registry (atomic counters, gauges, and fixed-bucket latency
// histograms), span-based query tracing, and exposition in Prometheus
// text format and JSON.
//
// Registration (name -> metric) takes a mutex once; every subsequent
// increment and observation is a single atomic operation, so metrics can
// sit on the buffer pool fetch path and the per-tuple query loops
// without contending. Callback metrics (CounterFunc / GaugeFunc) read an
// external atomic at exposition time, letting packages that must not
// depend on obs (or that predate it) publish their counters without
// restructuring.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Either the registry owns
// the value (Add/Inc) or a callback reads an external source; callers
// never mix the two.
type Counter struct {
	name, help string
	v          atomic.Int64
	fn         func() int64 // when non-nil, the counter is read-only
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n (no-op on callback counters).
func (c *Counter) Add(n int64) {
	if c.fn == nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. Like Counter, it is either owned
// (Set) or a callback.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // float64 bits
	fn         func() float64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v (no-op on callback gauges).
func (g *Gauge) Set(v float64) {
	if g.fn == nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are inclusive upper limits, with an implicit +Inf
// bucket. Observations are atomics only — one bucket increment, one
// count increment, one CAS-loop sum update.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Int64 // len(bounds)+1; last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-updated
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation within the bucket holding the
// target rank — the same estimate Prometheus's histogram_quantile
// computes server-side. Returns 0 on an empty histogram; ranks landing
// in the +Inf bucket report the highest finite bound (the estimate
// cannot exceed what the buckets resolve).
func (h *Histogram) Quantile(q float64) float64 {
	cum := make([]int64, len(h.buckets))
	total := int64(0)
	for i := range h.buckets {
		total += h.buckets[i].Load()
		cum[i] = total
	}
	return bucketQuantile(h.bounds, cum, total, q)
}

// bucketQuantile is the interpolation shared by Histogram.Quantile and
// the snapshot exposition; cum holds cumulative bucket counts, the last
// entry being the +Inf bucket (== count).
func bucketQuantile(bounds []float64, cum []int64, count int64, q float64) float64 {
	if count == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(count)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i == len(bounds) {
			return bounds[len(bounds)-1] // +Inf bucket
		}
		lo := 0.0
		prev := int64(0)
		if i > 0 {
			lo = bounds[i-1]
			prev = cum[i-1]
		}
		inBucket := c - prev
		if inBucket == 0 {
			return bounds[i]
		}
		return lo + (bounds[i]-lo)*(rank-float64(prev))/float64(inBucket)
	}
	return bounds[len(bounds)-1]
}

// LatencyBuckets are the default bounds for latency histograms, in
// seconds: 1µs to 10s, a decade apart, with a few intra-decade points in
// the query-relevant millisecond range.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 10,
}

// Registry holds the engine's metrics, keyed by name. One registry is
// created per open database and shared by every session; registration is
// find-or-create, so layers can name the same metric without
// coordinating creation order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter finds or creates the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// CounterFunc registers a read-only counter backed by fn (an external
// atomic, typically). Re-registering a name replaces its callback, so a
// reopened layer always reports its live source.
func (r *Registry) CounterFunc(name, help string, fn func() int64) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{name: name, help: help, fn: fn}
	r.counters[name] = c
	return c
}

// Gauge finds or creates the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a read-only gauge backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Gauge{name: name, help: help, fn: fn}
	r.gauges[name] = g
	return g
}

// Histogram finds or creates the named histogram with the given bucket
// bounds (nil selects LatencyBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %s bounds not sorted", name))
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}
