package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every metric in a registry, in a
// JSON-friendly shape. Metric lists are sorted by name so snapshots are
// deterministic and diffable.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a Snapshot. Buckets are cumulative
// counts per upper bound, Prometheus-style; the final bucket is +Inf.
// P50/P95/P99 are bucket-interpolated quantile estimates (see
// Histogram.Quantile), zero when the histogram is empty.
type HistogramValue struct {
	Name    string    `json:"name"`
	Help    string    `json:"help,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	P50     float64   `json:"p50,omitempty"`
	P95     float64   `json:"p95,omitempty"`
	P99     float64   `json:"p99,omitempty"`
}

// Counter returns the named counter's value from the snapshot, or 0.
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value from the snapshot, or 0.
func (s Snapshot) Gauge(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Snapshot copies every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, h := range hists {
		hv := HistogramValue{
			Name:   h.name,
			Help:   h.help,
			Bounds: h.bounds,
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			hv.Buckets = append(hv.Buckets, cum)
		}
		if hv.Count > 0 {
			hv.P50 = bucketQuantile(hv.Bounds, hv.Buckets, hv.Count, 0.50)
			hv.P95 = bucketQuantile(hv.Bounds, hv.Buckets, hv.Count, 0.95)
			hv.P99 = bucketQuantile(hv.Bounds, hv.Buckets, hv.Count, 0.99)
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, c := range s.Counters {
		writeHeader(&b, c.Name, c.Help, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		writeHeader(&b, g.Name, g.Help, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		writeHeader(&b, h.Name, h.Help, "histogram")
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.Name, formatFloat(bound), h.Buckets[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Buckets[len(h.Buckets)-1])
		fmt.Fprintf(&b, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
