// Package cluster is the sharded-olapd layer: a coordinator that owns a
// shard map (shard i of n over the engines' standard chunk-range /
// extent-range split), scatters one query as SubQuery frames to the
// shard servers over the wire protocol, and gathers the partial results
// with the same fold semantics the intra-query parallel workers use —
// per-group sums and counts add, mins and maxes compare — so the merged
// answer is bit-identical to a single-node run at any shard count.
//
// Every shard holds a full copy of the database; ownership is the
// logical restriction, not physical placement, exactly like a parallel
// worker's range. That makes the cluster a fan-out of the paper's §4
// algorithms across processes: the coordinator is the consolidation
// node, the shards are workers that happen to be across a socket.
//
// Failure handling: a shard that cannot be reached is retried with
// jittered exponential backoff (dial, connection, shutdown, and
// admission errors only — parse and execution errors are the query's
// fault and never retried). When retries are exhausted the query fails,
// unless the caller opted into PARTIAL mode: then the surviving shards'
// merge is returned together with a per-shard completeness report.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/obs"
)

// Config tunes a Coordinator.
type Config struct {
	// Shards are the data server addresses; Shards[i] serves shard i of
	// len(Shards). At least one is required.
	Shards []string
	// Client tunes the per-shard connection pools.
	Client client.Config
	// MaxIdlePerShard caps idle pooled connections per shard; 0 selects 2.
	MaxIdlePerShard int
	// Retries is how many times one shard's sub-query is re-attempted
	// after a retryable failure (dial, connection, shutdown, admission);
	// 0 selects 2. Negative disables retry.
	Retries int
	// RetryBackoff is the base backoff before the first retry, doubled
	// each attempt and jittered to 0.5-1.5x so restarted shards are not
	// hammered in lockstep; 0 selects 100ms.
	RetryBackoff time.Duration
	// Workers overrides each shard's intra-query parallel degree per
	// sub-query; 0 keeps the shard server's own default.
	Workers int
	// Registry, when non-nil, receives the coordinator's metrics.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxIdlePerShard <= 0 {
		c.MaxIdlePerShard = 2
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	return c
}

// ShardReport is one shard's entry in a query's completeness report —
// what PARTIAL mode returns alongside the surviving merge, rendered as
// JSON on the wire.
type ShardReport struct {
	Shard    int    `json:"shard"`
	Addr     string `json:"addr"`
	OK       bool   `json:"ok"`
	Rows     int    `json:"rows"`
	Attempts int    `json:"attempts"`
	WaitNS   int64  `json:"wait_ns"`
	Err      string `json:"err,omitempty"`
}

// Result is one distributed query's merged answer.
type Result struct {
	// Plan is the cluster plan label: scatter-gather[n](<shard plan>).
	Plan       string
	Engine     client.Engine
	GroupAttrs []string
	Aggs       []uint8
	Rows       []client.Row
	// Elapsed is the whole distributed execution, coordinator-side.
	Elapsed time.Duration
	// ScatterNS is the slowest shard's sub-query wait (the scatter
	// barrier); GatherNS is the coordinator-side merge + sort.
	ScatterNS int64
	GatherNS  int64
	// QueryID is the distributed query's identity, stamped into every
	// shard's trace and flight recorder.
	QueryID string
	// Trace is the coordinator's rendered span tree (scatter/gather
	// breakdown), filled when tracing was requested.
	Trace string
	// Reports is the per-shard completeness report, one entry per shard
	// in shard order. Complete is true when every shard answered.
	Reports  []ShardReport
	Complete bool
}

// PartialJSON renders the completeness report for the wire's
// ResultDone.Partial field; empty when the result is complete.
func (r *Result) PartialJSON() string {
	if r.Complete {
		return ""
	}
	b, err := json.Marshal(r.Reports)
	if err != nil {
		return fmt.Sprintf(`[{"err":%q}]`, err.Error())
	}
	return string(b)
}

// Coordinator scatters queries across the shard servers and gathers the
// partials. Safe for concurrent use.
type Coordinator struct {
	cfg   Config
	pools []*client.Pool
	up    []atomic.Bool // last-known reachability, per shard

	queries  *obs.Counter
	partials *obs.Counter
	failures *obs.Counter
	retries  *obs.Counter
	scatterH *obs.Histogram
	gatherH  *obs.Histogram
}

// New creates a coordinator over the configured shard servers. No
// connection is made until the first query.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:   cfg,
		pools: make([]*client.Pool, len(cfg.Shards)),
		up:    make([]atomic.Bool, len(cfg.Shards)),
	}
	for i, addr := range cfg.Shards {
		co.pools[i] = client.NewPool(addr, cfg.Client, cfg.MaxIdlePerShard)
		co.up[i].Store(true) // optimistic until a sub-query says otherwise
	}
	if reg := cfg.Registry; reg != nil {
		co.queries = reg.Counter("cluster_queries_total", "distributed queries coordinated")
		co.partials = reg.Counter("cluster_queries_partial_total", "distributed queries answered partially")
		co.failures = reg.Counter("cluster_queries_failed_total", "distributed queries that failed")
		co.retries = reg.Counter("cluster_subquery_retries_total", "shard sub-query retry attempts")
		co.scatterH = reg.Histogram("cluster_scatter_seconds", "slowest shard sub-query wait per query", nil)
		co.gatherH = reg.Histogram("cluster_gather_seconds", "coordinator merge + sort time per query", nil)
		for i := range co.up {
			i := i
			reg.GaugeFunc(fmt.Sprintf("cluster_shard_up_%d", i),
				fmt.Sprintf("last-known reachability of shard %d (%s)", i, cfg.Shards[i]),
				func() float64 {
					if co.up[i].Load() {
						return 1
					}
					return 0
				})
		}
	}
	return co, nil
}

// Shards reports the shard count.
func (co *Coordinator) Shards() int { return len(co.pools) }

// ShardAddr reports shard i's address.
func (co *Coordinator) ShardAddr(i int) string { return co.cfg.Shards[i] }

// ShardUp reports shard i's last-known reachability.
func (co *Coordinator) ShardUp(i int) bool { return co.up[i].Load() }

// Close closes every shard pool.
func (co *Coordinator) Close() {
	for _, p := range co.pools {
		p.Close()
	}
}

// retryable classifies a sub-query failure: infrastructure trouble
// (dial, broken connection, draining or overloaded server) is worth a
// retry; the query's own faults (parse, execution, protocol) and
// cancellation are permanent.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case client.IsCode(err, client.CodeParse),
		client.IsCode(err, client.CodeExec),
		client.IsCode(err, client.CodeProtocol),
		client.IsCode(err, client.CodeCanceled):
		return false
	}
	var ce *client.Error
	if errors.As(err, &ce) {
		// Shutdown and admission rejections: the shard exists but cannot
		// take the query right now — retry after backoff.
		return ce.Code == client.CodeShutdown || ce.Code == client.CodeAdmission
	}
	// Dial errors, broken connections, handshake failures.
	return true
}

// subQueryShard runs one shard's sub-query with bounded jittered retry,
// filling its report. ctx cancellation aborts immediately (the pooled
// connection sends the Cancel frame to the shard).
func (co *Coordinator) subQueryShard(ctx context.Context, i int, sql string,
	engine client.Engine, qid string, workers int, rep *ShardReport) (*client.Result, error) {
	start := time.Now()
	defer func() { rep.WaitNS = time.Since(start).Nanoseconds() }()
	var lastErr error
	for attempt := 0; ; attempt++ {
		rep.Attempts = attempt + 1
		res, err := co.pools[i].SubQuery(ctx, sql, engine, qid, i, len(co.pools), workers)
		if err == nil {
			co.up[i].Store(true)
			rep.OK = true
			rep.Rows = len(res.Rows)
			return res, nil
		}
		lastErr = err
		co.up[i].Store(false)
		if ctx.Err() != nil || !retryable(err) || attempt >= co.cfg.Retries {
			rep.Err = err.Error()
			return nil, lastErr
		}
		if co.retries != nil {
			co.retries.Inc()
		}
		// Exponential backoff with the pool's jitter, so a fleet of
		// retries against a restarting shard spreads out.
		backoff := client.Jitter(co.cfg.RetryBackoff << uint(attempt))
		select {
		case <-ctx.Done():
			rep.Err = ctx.Err().Error()
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
	}
}

// resolveEngine pins the cluster-wide engine for one query. Auto is
// resolved by asking a live shard's planner (Explain) — every shard
// holds the same statistics, so any shard's choice is the cluster's —
// and the resolved engine is then forced in every SubQuery frame. One
// engine everywhere is a correctness requirement, not an optimization:
// shards restrict along their engine's own axis (chunks vs extents),
// so mixed engines would slice the fact data along different axes and
// double- or under-count.
func (co *Coordinator) resolveEngine(ctx context.Context, sql string, engine client.Engine) (client.Engine, string, error) {
	if engine != client.Auto {
		return engine, "", nil
	}
	var lastErr error
	for i := range co.pools {
		expl, err := co.pools[i].Explain(ctx, sql, client.Auto)
		if err != nil {
			lastErr = err
			if retryable(err) {
				co.up[i].Store(false)
				continue // failover to the next shard's planner
			}
			return client.Auto, "", err // the query itself is bad
		}
		co.up[i].Store(true)
		return expl.Engine, expl.Chosen, nil
	}
	return client.Auto, "", fmt.Errorf("cluster: no shard reachable to plan query: %w", lastErr)
}

// QueryOpts tunes one distributed query.
type QueryOpts struct {
	// Partial opts into partial answers: unreachable shards no longer
	// fail the query, the surviving shards' merge is returned, and
	// Result.Reports says which shards are missing.
	Partial bool
	// Trace collects the coordinator's scatter/gather span tree into
	// Result.Trace.
	Trace bool
	// Workers overrides the per-sub-query worker count for this query;
	// 0 falls back to Config.Workers.
	Workers int
	// TraceID, when non-empty, is the distributed query's identity (a
	// frontend client's minted ID); empty mints a fresh one.
	TraceID string
}

// Query runs sql across every shard and merges the partials; see
// QueryOpts for partial-answer, tracing, and worker overrides.
func (co *Coordinator) Query(ctx context.Context, sql string, engine client.Engine,
	opts QueryOpts) (*Result, error) {
	if co.queries != nil {
		co.queries.Inc()
	}
	partial, traceOn := opts.Partial, opts.Trace
	workers := opts.Workers
	if workers <= 0 {
		workers = co.cfg.Workers
	}
	start := time.Now()
	qid := opts.TraceID
	if qid == "" {
		qid = obs.NewQueryID()
	}
	tr := obs.NewTrace("cluster-query")
	tr.SetSampled(traceOn)
	tr.Root.Set("query_id", qid)
	tr.Root.Set("shards", len(co.pools))

	planSp := tr.Root.Child("resolve-engine")
	engine, _, err := co.resolveEngine(ctx, sql, engine)
	planSp.End()
	if err != nil {
		if co.failures != nil {
			co.failures.Inc()
		}
		return nil, err
	}

	n := len(co.pools)
	out := &Result{
		Engine:  engine,
		QueryID: qid,
		Reports: make([]ShardReport, n),
	}
	for i := range out.Reports {
		out.Reports[i] = ShardReport{Shard: i, Addr: co.cfg.Shards[i]}
	}

	// Scatter: one goroutine per shard, all under one cancelable
	// context so a caller cancel (or the frontend's Cancel frame) fans
	// out to every shard as wire Cancel frames.
	scatterSp := tr.Root.Child("scatter")
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partialsByShard := make([]*client.Result, n)
	errsByShard := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sp := tr.Fine(scatterSp, fmt.Sprintf("shard-%d", i))
		go func() {
			defer wg.Done()
			partialsByShard[i], errsByShard[i] = co.subQueryShard(sctx, i, sql, engine, qid, workers, &out.Reports[i])
			sp.End()
		}()
	}
	wg.Wait()
	scatterSp.End()
	out.ScatterNS = scatterSp.Duration.Nanoseconds()
	if co.scatterH != nil {
		co.scatterH.ObserveDuration(scatterSp.Duration)
	}

	// Classify the failures before merging.
	okCount := 0
	var firstErr error
	var firstFailed int
	for i := 0; i < n; i++ {
		if errsByShard[i] == nil {
			okCount++
		} else if firstErr == nil {
			firstErr, firstFailed = errsByShard[i], i
		}
	}
	if okCount == 0 {
		if co.failures != nil {
			co.failures.Inc()
		}
		return nil, fmt.Errorf("cluster: all %d shards failed: shard %d (%s): %w",
			n, firstFailed, co.cfg.Shards[firstFailed], firstErr)
	}
	if okCount < n && !partial {
		if co.failures != nil {
			co.failures.Inc()
		}
		return nil, fmt.Errorf("cluster: shard %d (%s) failed (set PARTIAL on to accept %d/%d shards): %w",
			firstFailed, co.cfg.Shards[firstFailed], okCount, n, firstErr)
	}
	out.Complete = okCount == n
	if !out.Complete && co.partials != nil {
		co.partials.Inc()
	}

	// Gather: fold the partials in shard-index order. The fold is the
	// workerPartial merge over the wire: per group, sums and counts add,
	// mins and maxes compare — int64 addition is associative and
	// commutative, so the merged cells are bit-identical to a
	// single-node run whatever the shard count. Rows are then sorted
	// with Result.SortedRows's comparator; group tuples are unique after
	// the fold, so the order is total and deterministic.
	gatherSp := tr.Root.Child("gather")
	gatherStart := time.Now()
	var shardPlan string
	acc := make(map[string]int, 64)
	for i := 0; i < n; i++ {
		pr := partialsByShard[i]
		if pr == nil {
			continue
		}
		if shardPlan == "" {
			shardPlan = pr.Plan
			out.GroupAttrs = pr.GroupAttrs
			out.Aggs = pr.Aggs
		}
		for _, row := range pr.Rows {
			key := strings.Join(row.Groups, "\x00")
			if at, ok := acc[key]; ok {
				dst := &out.Rows[at]
				dst.Sum += row.Sum
				dst.Count += row.Count
				if row.Min < dst.Min {
					dst.Min = row.Min
				}
				if row.Max > dst.Max {
					dst.Max = row.Max
				}
			} else {
				acc[key] = len(out.Rows)
				out.Rows = append(out.Rows, row)
			}
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		a, b := out.Rows[i].Groups, out.Rows[j].Groups
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	gatherSp.End()
	out.GatherNS = time.Since(gatherStart).Nanoseconds()
	if co.gatherH != nil {
		co.gatherH.ObserveDuration(gatherSp.Duration)
	}

	out.Plan = fmt.Sprintf("scatter-gather[%d](%s)", n, shardPlan)
	out.Elapsed = time.Since(start)
	tr.End()
	if traceOn {
		out.Trace = tr.String()
	}
	return out, nil
}

// Explain forwards the query to a live shard's planner and prefixes the
// cluster's own plan line, so EXPLAIN against the coordinator shows
// both the scatter topology and the per-shard plan.
func (co *Coordinator) Explain(ctx context.Context, sql string, engine client.Engine) (*client.Explanation, error) {
	var lastErr error
	for i := range co.pools {
		expl, err := co.pools[i].Explain(ctx, sql, engine)
		if err != nil {
			lastErr = err
			if retryable(err) {
				co.up[i].Store(false)
				continue
			}
			return nil, err
		}
		co.up[i].Store(true)
		return &client.Explanation{
			Chosen: fmt.Sprintf("scatter-gather[%d](%s)", len(co.pools), expl.Chosen),
			Engine: expl.Engine,
			Text: fmt.Sprintf("cluster: scatter-gather over %d shards  (planned on shard %d)\n%s",
				len(co.pools), i, expl.Text),
		}, nil
	}
	return nil, fmt.Errorf("cluster: no shard reachable to plan query: %w", lastErr)
}

// Ping checks every shard, returning the number reachable.
func (co *Coordinator) Ping(ctx context.Context) int {
	okCount := 0
	for i := range co.pools {
		c, err := co.pools[i].Get(ctx)
		if err != nil {
			co.up[i].Store(false)
			continue
		}
		co.pools[i].Put(c)
		co.up[i].Store(true)
		okCount++
	}
	return okCount
}
