package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
	"repro/client"
	"repro/internal/server"
	"repro/internal/wire"
)

// newTestDB builds the paper's small retail example in memory: 12
// products x 8 stores x 6 time keys, ~144 facts, array + bitmaps built.
func newTestDB(t testing.TB) *repro.DB {
	t.Helper()
	db, err := repro.Open(repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := &repro.StarSchema{
		Fact: repro.FactSchema{Name: "fact", Dims: []string{"product", "store", "time"}, Measure: "volume"},
		Dimensions: []repro.DimensionSchema{
			{Name: "product", Key: "pid", Attrs: []string{"type", "category"}},
			{Name: "store", Key: "sid", Attrs: []string{"city", "region"}},
			{Name: "time", Key: "tid", Attrs: []string{"month", "year"}},
		},
	}
	if err := db.CreateStarSchema(schema); err != nil {
		t.Fatal(err)
	}
	dims := map[string][]repro.DimensionRow{}
	for k := int64(0); k < 12; k++ {
		dims["product"] = append(dims["product"], repro.DimensionRow{Key: k,
			Attrs: []string{fmt.Sprintf("type%d", k%4), fmt.Sprintf("cat%d", k%2)}})
	}
	for k := int64(0); k < 8; k++ {
		dims["store"] = append(dims["store"], repro.DimensionRow{Key: k,
			Attrs: []string{fmt.Sprintf("city%d", k%4), fmt.Sprintf("region%d", k%2)}})
	}
	for k := int64(0); k < 6; k++ {
		dims["time"] = append(dims["time"], repro.DimensionRow{Key: k,
			Attrs: []string{fmt.Sprintf("m%d", k%3), fmt.Sprintf("y%d", k/3)}})
	}
	for name, rows := range dims {
		if err := db.LoadDimension(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	var facts []repro.FactTuple
	for p := int64(0); p < 12; p++ {
		for s := int64(0); s < 8; s++ {
			for tm := int64(0); tm < 6; tm++ {
				if (p+s+tm)%4 == 0 {
					facts = append(facts, repro.FactTuple{Keys: []int64{p, s, tm}, Measure: p*100 + s*10 + tm})
				}
			}
		}
	}
	if err := db.LoadFactRows(facts); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildArray(repro.ArrayConfig{ChunkShape: []int{4, 4, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildBitmapIndexes(); err != nil {
		t.Fatal(err)
	}
	return db
}

const retailQuery = `
select sum(volume), count(*), min(volume), max(volume), city, type
from fact, product, store
where fact.pid = product.pid and fact.sid = store.sid
group by city, type`

const retailSelectQuery = `
select sum(volume), city
from fact, product, store
where product.category = 'cat1' and store.region = 'region0'
group by city`

// shardServer is a restartable olapd data server over a shared test DB,
// pinned to its first bound address so a "restarted shard" comes back
// where the coordinator expects it.
type shardServer struct {
	t    testing.TB
	db   *repro.DB
	addr string
	mu   sync.Mutex
	srv  *server.Server
}

func startShard(t testing.TB, db *repro.DB) *shardServer {
	t.Helper()
	s := &shardServer{t: t, db: db, addr: "127.0.0.1:0"}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func (s *shardServer) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		return nil
	}
	srv := server.New(s.db, server.Config{Addr: s.addr})
	if err := srv.Start(); err != nil {
		return err
	}
	s.srv = srv
	s.addr = srv.Addr().String() // pin the port for restarts
	return nil
}

func (s *shardServer) Stop() {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

func (s *shardServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// startCluster spins up n shard servers over one DB plus a coordinator.
func startCluster(t testing.TB, db *repro.DB, n int, cfg Config) (*Coordinator, []*shardServer) {
	t.Helper()
	shards := make([]*shardServer, n)
	for i := range shards {
		shards[i] = startShard(t, db)
		cfg.Shards = append(cfg.Shards, shards[i].Addr())
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co, shards
}

func clientRowsEqual(a, b []client.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sum != b[i].Sum || a[i].Count != b[i].Count ||
			a[i].Min != b[i].Min || a[i].Max != b[i].Max ||
			strings.Join(a[i].Groups, "\x00") != strings.Join(b[i].Groups, "\x00") {
			return false
		}
	}
	return true
}

// singleNodeRows runs sql embedded and converts to wire rows for
// comparison with cluster results.
func singleNodeRows(t testing.TB, db *repro.DB, sql string, engine repro.Engine) []client.Row {
	t.Helper()
	res, err := db.QueryOn(sql, engine)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]client.Row, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = client.Row{Groups: r.Groups, Sum: r.Sum, Count: r.Count, Min: r.Min, Max: r.Max}
	}
	return out
}

// TestClusterBitIdenticalToSingleNode is the acceptance differential:
// every engine, both query shapes, shard counts {1, 2, 3} — the
// coordinator's merge must equal the embedded single-node answer
// exactly.
func TestClusterBitIdenticalToSingleNode(t *testing.T) {
	db := newTestDB(t)
	engines := []struct {
		name   string
		emb    repro.Engine
		remote client.Engine
	}{
		{"array", repro.ArrayEngine, client.Array},
		{"starjoin", repro.StarJoinEngine, client.StarJoin},
		{"bitmap", repro.BitmapEngine, client.Bitmap},
	}
	queries := []struct{ name, sql string }{
		{"consolidate", retailQuery},
		{"select", retailSelectQuery},
	}
	for _, n := range []int{1, 2, 3} {
		co, _ := startCluster(t, db, n, Config{})
		for _, q := range queries {
			for _, e := range engines {
				res, err := co.Query(context.Background(), q.sql, e.remote, QueryOpts{})
				if err != nil {
					t.Fatalf("shards=%d %s %s: %v", n, q.name, e.name, err)
				}
				if !res.Complete || len(res.Reports) != n {
					t.Fatalf("shards=%d %s %s: complete=%v reports=%d", n, q.name, e.name, res.Complete, len(res.Reports))
				}
				want := singleNodeRows(t, db, q.sql, e.emb)
				if !clientRowsEqual(res.Rows, want) {
					t.Fatalf("shards=%d %s %s: cluster rows %v != single-node %v", n, q.name, e.name, res.Rows, want)
				}
				wantPlan := fmt.Sprintf("scatter-gather[%d](", n)
				if !strings.HasPrefix(res.Plan, wantPlan) {
					t.Fatalf("plan = %q, want prefix %q", res.Plan, wantPlan)
				}
			}
		}
		// Auto resolves to one engine cluster-wide and still agrees.
		res, err := co.Query(context.Background(), retailQuery, client.Auto, QueryOpts{})
		if err != nil {
			t.Fatalf("shards=%d auto: %v", n, err)
		}
		if res.Engine == client.Auto {
			t.Fatalf("shards=%d: auto not resolved to a concrete engine", n)
		}
		if want := singleNodeRows(t, db, retailQuery, repro.Auto); !clientRowsEqual(res.Rows, want) {
			t.Fatalf("shards=%d auto: rows differ", n)
		}
	}
}

// TestClusterRetryAfterShardRestart kills one shard, starts the query
// (which must fail its first attempts), restarts the shard during the
// retry backoff, and asserts the query succeeds with Attempts > 1
// recorded for the restarted shard.
func TestClusterRetryAfterShardRestart(t *testing.T) {
	db := newTestDB(t)
	co, shards := startCluster(t, db, 3, Config{Retries: 8, RetryBackoff: 25 * time.Millisecond})

	shards[1].Stop()
	restarted := make(chan error, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		restarted <- shards[1].Start()
	}()

	res, err := co.Query(context.Background(), retailQuery, client.Array, QueryOpts{})
	if err != nil {
		t.Fatalf("query across restart: %v", err)
	}
	if err := <-restarted; err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !res.Complete {
		t.Fatalf("result not complete after retry: %+v", res.Reports)
	}
	if got := res.Reports[1]; !got.OK || got.Attempts < 2 {
		t.Fatalf("restarted shard report = %+v, want OK with retries", got)
	}
	if want := singleNodeRows(t, db, retailQuery, repro.ArrayEngine); !clientRowsEqual(res.Rows, want) {
		t.Fatal("post-retry merge differs from single-node")
	}
}

// TestClusterPartialMode kills one shard for good. Without PARTIAL the
// query must fail naming the shard; with PARTIAL it must return the
// surviving shards' merge and a report that says exactly which shard is
// missing — and the merge must equal the fold of the survivors'
// sub-answers fetched directly.
func TestClusterPartialMode(t *testing.T) {
	db := newTestDB(t)
	co, shards := startCluster(t, db, 3, Config{Retries: -1})
	dead := 2
	shards[dead].Stop()

	if _, err := co.Query(context.Background(), retailQuery, client.Array, QueryOpts{}); err == nil {
		t.Fatal("strict mode accepted a lost shard")
	} else if !strings.Contains(err.Error(), "PARTIAL") {
		t.Fatalf("strict-mode error does not point at PARTIAL: %v", err)
	}

	res, err := co.Query(context.Background(), retailQuery, client.Array, QueryOpts{Partial: true})
	if err != nil {
		t.Fatalf("partial query: %v", err)
	}
	if res.Complete {
		t.Fatal("partial result claims completeness")
	}
	for i, rep := range res.Reports {
		if wantOK := i != dead; rep.OK != wantOK {
			t.Fatalf("report[%d].OK = %v, want %v (%+v)", i, rep.OK, wantOK, rep)
		}
	}
	if res.Reports[dead].Err == "" {
		t.Fatal("dead shard report carries no error")
	}
	if res.PartialJSON() == "" {
		t.Fatal("incomplete result renders no completeness report")
	}

	// Accuracy: the partial merge is exactly the fold of the surviving
	// shards' sub-answers.
	var want []client.Row
	acc := map[string]int{}
	for i := 0; i < 3; i++ {
		if i == dead {
			continue
		}
		c, err := client.Dial(shards[i].Addr(), client.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.SubQuery(context.Background(), retailQuery, client.Array, "", i, 3, 0)
		c.Close()
		if err != nil {
			t.Fatalf("direct sub-query shard %d: %v", i, err)
		}
		for _, row := range sub.Rows {
			key := strings.Join(row.Groups, "\x00")
			if at, ok := acc[key]; ok {
				want[at].Sum += row.Sum
				want[at].Count += row.Count
				if row.Min < want[at].Min {
					want[at].Min = row.Min
				}
				if row.Max > want[at].Max {
					want[at].Max = row.Max
				}
			} else {
				acc[key] = len(want)
				want = append(want, row)
			}
		}
	}
	sortRows(want)
	if !clientRowsEqual(res.Rows, want) {
		t.Fatalf("partial merge %v != survivors' fold %v", res.Rows, want)
	}
}

func sortRows(rows []client.Row) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && strings.Join(rows[j].Groups, "\x00") < strings.Join(rows[j-1].Groups, "\x00"); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// hangShard is a fake data server whose sub-queries never answer until
// a Cancel frame for them arrives — the deterministic way to observe
// the coordinator's cancel fan-out.
type hangShard struct {
	ln       net.Listener
	subs     atomic.Int64 // sub-queries received
	cancels  atomic.Int64 // cancel frames received
	canceled chan struct{}
}

func startHangShard(t *testing.T) *hangShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &hangShard{ln: ln, canceled: make(chan struct{}, 16)}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go h.serve(nc)
		}
	}()
	return h
}

func (h *hangShard) serve(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReader(nc)
	if ft, _, err := wire.ReadFrame(br); err != nil || ft != wire.FrameHello {
		return
	}
	if err := wire.WriteFrame(nc, wire.FrameHelloAck,
		(&wire.HelloAck{Version: wire.Version, Server: "hang-shard"}).Encode()); err != nil {
		return
	}
	for {
		ft, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch ft {
		case wire.FramePing:
			if err := wire.WriteFrame(nc, wire.FramePong, nil); err != nil {
				return
			}
		case wire.FrameSubQuery:
			sq, err := wire.DecodeSubQuery(payload)
			if err != nil {
				return
			}
			h.subs.Add(1)
			// Hang: answer only when the cancel for this query arrives.
			ft2, p2, err := wire.ReadFrame(br)
			if err != nil {
				return
			}
			if ft2 != wire.FrameCancel {
				return
			}
			cf, err := wire.DecodeCancel(p2)
			if err != nil || cf.ID != sq.ID {
				return
			}
			h.cancels.Add(1)
			h.canceled <- struct{}{}
			ef := &wire.ErrorFrame{ID: sq.ID, Code: wire.CodeCanceled, Message: "canceled"}
			if err := wire.WriteFrame(nc, wire.FrameError, ef.Encode()); err != nil {
				return
			}
		default:
			return
		}
	}
}

// TestClusterCancelFansOutToAllShards cancels a distributed query and
// asserts every shard received a wire Cancel frame for its sub-query.
func TestClusterCancelFansOutToAllShards(t *testing.T) {
	const n = 3
	var addrs []string
	hangs := make([]*hangShard, n)
	for i := range hangs {
		hangs[i] = startHangShard(t)
		addrs = append(addrs, hangs[i].ln.Addr().String())
	}
	co, err := New(Config{Shards: addrs, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, qerr := co.Query(ctx, retailQuery, client.Array, QueryOpts{})
		done <- qerr
	}()

	// Wait for every shard to be mid-sub-query, then cancel.
	deadline := time.After(5 * time.Second)
	for {
		if hangs[0].subs.Load()+hangs[1].subs.Load()+hangs[2].subs.Load() >= n {
			break
		}
		select {
		case <-deadline:
			t.Fatal("shards never received their sub-queries")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()

	for i := 0; i < n; i++ {
		select {
		case <-hangs[0].canceled:
		case <-hangs[1].canceled:
		case <-hangs[2].canceled:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d shards saw the cancel", i)
		}
	}
	if err := <-done; err == nil {
		t.Fatal("canceled query returned no error")
	}
	for i, h := range hangs {
		if h.cancels.Load() != 1 {
			t.Fatalf("shard %d saw %d cancel frames, want 1", i, h.cancels.Load())
		}
	}
}

// TestFrontendServesWireProtocol drives the coordinator through its own
// wire frontend: plain clients query it like any olapd, partial mode
// arrives via SetPartial, the completeness report rides ResultDone, and
// EXPLAIN shows the scatter topology.
func TestFrontendServesWireProtocol(t *testing.T) {
	db := newTestDB(t)
	co, shards := startCluster(t, db, 3, Config{Retries: -1})
	fe := NewFrontend(co, FrontendConfig{})
	if err := fe.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})

	c, err := client.Dial(fe.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Query(context.Background(), retailQuery, client.Array)
	if err != nil {
		t.Fatal(err)
	}
	if want := singleNodeRows(t, db, retailQuery, repro.ArrayEngine); !clientRowsEqual(res.Rows, want) {
		t.Fatal("frontend rows differ from single-node")
	}
	if res.Partial != "" {
		t.Fatalf("complete result carries a partial report: %s", res.Partial)
	}
	if !strings.HasPrefix(res.Plan, "scatter-gather[3](") {
		t.Fatalf("plan = %q", res.Plan)
	}

	expl, err := c.Explain(context.Background(), retailQuery, client.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl.Text, "scatter-gather over 3 shards") {
		t.Fatalf("explain text = %q", expl.Text)
	}

	// Lose a shard: strict queries fail, PARTIAL queries answer with the
	// report on the wire.
	shards[0].Stop()
	if _, err := c.Query(context.Background(), retailQuery, client.Array); err == nil {
		t.Fatal("strict query succeeded with a dead shard")
	}
	if err := c.SetPartial(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(context.Background(), retailQuery, client.Array)
	if err != nil {
		t.Fatalf("partial query over wire: %v", err)
	}
	if res.Partial == "" || !strings.Contains(res.Partial, `"ok":false`) {
		t.Fatalf("partial report missing: %q", res.Partial)
	}

	// The PARTIAL option is coordinator-only: a plain data server must
	// reject it.
	dc, err := client.Dial(shards[1].Addr(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if err := dc.SetPartial(context.Background(), true); err == nil {
		t.Fatal("plain olapd accepted the PARTIAL option")
	}
}

// TestClusterConcurrentKillRestart hammers the coordinator with partial
// queries while one shard cycles down and up — run under -race this is
// the acceptance's concurrency check. Every complete answer must equal
// the single-node answer; partial answers must carry accurate reports.
func TestClusterConcurrentKillRestart(t *testing.T) {
	db := newTestDB(t)
	co, shards := startCluster(t, db, 3, Config{Retries: 1, RetryBackoff: 5 * time.Millisecond})
	want := singleNodeRows(t, db, retailQuery, repro.ArrayEngine)

	stop := make(chan struct{})
	var cycles sync.WaitGroup
	cycles.Add(1)
	go func() {
		defer cycles.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			shards[2].Stop()
			time.Sleep(10 * time.Millisecond)
			if err := shards[2].Start(); err != nil {
				t.Errorf("restart: %v", err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	for i := 0; i < 40; i++ {
		res, err := co.Query(context.Background(), retailQuery, client.Array, QueryOpts{Partial: true})
		if err != nil {
			// All-shards-lost is impossible here (shards 0 and 1 stay up),
			// so any error is a bug.
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Complete {
			if !clientRowsEqual(res.Rows, want) {
				t.Fatalf("query %d: complete answer differs from single-node", i)
			}
		} else {
			if res.Reports[0].OK != true || res.Reports[1].OK != true || res.Reports[2].OK {
				t.Fatalf("query %d: report blames the wrong shard: %+v", i, res.Reports)
			}
			if res.PartialJSON() == "" {
				t.Fatalf("query %d: partial without report", i)
			}
		}
	}
	close(stop)
	cycles.Wait()
}

// errors import anchor (classification tests below use errors.As).
var _ = errors.As

// TestRetryableClassification pins the retry policy: infrastructure
// errors retry, query faults do not.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{fmt.Errorf("dial tcp: connection refused"), true},
		{&client.Error{Code: client.CodeShutdown, Message: "draining"}, true},
		{&client.Error{Code: client.CodeAdmission, Message: "queue full"}, true},
		{&client.Error{Code: client.CodeParse, Message: "syntax"}, false},
		{&client.Error{Code: client.CodeExec, Message: "boom"}, false},
		{&client.Error{Code: client.CodeProtocol, Message: "bad frame"}, false},
		{&client.Error{Code: client.CodeCanceled, Message: "canceled"}, false},
		{fmt.Errorf("wrapped: %w", &client.Error{Code: client.CodeShutdown}), true},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
