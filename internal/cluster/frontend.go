package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/wire"
)

// FrontendName is the banner a coordinator sends in its HelloAck frame.
const FrontendName = "repro-olapd-coordinator/1"

// FrontendConfig tunes a Frontend.
type FrontendConfig struct {
	// Addr is the listen address; empty selects "127.0.0.1:0".
	Addr string
	// ReadTimeout bounds one frame read once its first byte arrived, and
	// the handshake. 0 selects 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds one frame write. 0 selects 30s.
	WriteTimeout time.Duration
	// BatchRows is the result rows per RowBatch frame; 0 selects
	// wire.DefaultBatchRows.
	BatchRows int
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.BatchRows <= 0 {
		c.BatchRows = wire.DefaultBatchRows
	}
	return c
}

// Frontend serves the wire protocol for a Coordinator: an olapd-shaped
// listener whose queries scatter to the shard servers instead of
// running locally. Clients — olapcli, olapbench, the Go client — speak
// to it exactly as to a single olapd, with three differences: the
// PARTIAL session option opts into partial answers, the CACHE option is
// rejected (the coordinator holds no result cache), and GetProfiles is
// rejected (profiles live on the shards; query them directly).
type Frontend struct {
	co  *Coordinator
	cfg FrontendConfig
	lis net.Listener

	mu       sync.Mutex
	conns    map[*fconn]struct{}
	draining chan struct{}
	drained  bool
	connWG   sync.WaitGroup

	qmu     sync.Mutex
	queryWG sync.WaitGroup
}

// NewFrontend creates a wire frontend over co. Call Start to listen.
func NewFrontend(co *Coordinator, cfg FrontendConfig) *Frontend {
	return &Frontend{
		co:       co,
		cfg:      cfg.withDefaults(),
		conns:    make(map[*fconn]struct{}),
		draining: make(chan struct{}),
	}
}

// Start begins listening and accepting connections.
func (f *Frontend) Start() error {
	lis, err := net.Listen("tcp", f.cfg.Addr)
	if err != nil {
		return err
	}
	f.lis = lis
	f.connWG.Add(1)
	go f.acceptLoop()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (f *Frontend) Addr() net.Addr { return f.lis.Addr() }

func (f *Frontend) isDraining() bool {
	select {
	case <-f.draining:
		return true
	default:
		return false
	}
}

func (f *Frontend) acceptLoop() {
	defer f.connWG.Done()
	for {
		nc, err := f.lis.Accept()
		if err != nil {
			return // listener closed (Shutdown)
		}
		if f.isDraining() {
			nc.Close()
			continue
		}
		c := &fconn{fe: f, nc: nc}
		c.ctx, c.cancel = context.WithCancel(context.Background())
		f.mu.Lock()
		f.conns[c] = struct{}{}
		f.mu.Unlock()
		f.connWG.Add(1)
		go func() {
			defer f.connWG.Done()
			c.serve()
			f.mu.Lock()
			delete(f.conns, c)
			f.mu.Unlock()
		}()
	}
}

// beginQuery registers one in-flight distributed query, refusing when
// draining (same drain protocol as internal/server).
func (f *Frontend) beginQuery() bool {
	f.qmu.Lock()
	defer f.qmu.Unlock()
	if f.isDraining() {
		return false
	}
	f.queryWG.Add(1)
	return true
}

func (f *Frontend) endQuery() { f.queryWG.Done() }

// Shutdown drains the frontend: the listener closes, new queries are
// refused with wire.CodeShutdown, in-flight distributed queries finish
// streaming, then every connection and shard pool is closed. When ctx
// expires first, remaining queries are canceled hard.
func (f *Frontend) Shutdown(ctx context.Context) error {
	f.qmu.Lock()
	if !f.drained {
		f.drained = true
		close(f.draining)
	}
	f.qmu.Unlock()
	if f.lis != nil {
		f.lis.Close()
	}

	done := make(chan struct{})
	go func() {
		f.queryWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	f.mu.Lock()
	for c := range f.conns {
		c.cancel()
		c.nc.Close()
	}
	f.mu.Unlock()
	f.connWG.Wait()
	f.co.Close()
	return err
}

// fconn is one client connection to the frontend.
type fconn struct {
	fe     *Frontend
	nc     net.Conn
	ctx    context.Context // canceled on disconnect or hard shutdown
	cancel context.CancelFunc

	r   *bufio.Reader
	wmu sync.Mutex // serializes frames from concurrent query goroutines

	// Session options; atomics because option frames race in-flight
	// query goroutines, same as internal/server.
	traceOn atomic.Bool
	partial atomic.Bool
	workers atomic.Int32

	imu      sync.Mutex
	inflight map[uint32]context.CancelFunc
	qwg      sync.WaitGroup
}

func (c *fconn) writeFrame(t wire.FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.fe.cfg.WriteTimeout))
	return wire.WriteFrame(c.nc, t, payload)
}

func (c *fconn) writeError(id uint32, code wire.ErrorCode, msg string) {
	c.writeFrame(wire.FrameError, (&wire.ErrorFrame{ID: id, Code: code, Message: msg}).Encode())
}

func (c *fconn) readFrame() (wire.FrameType, *wire.Buffer, error) {
	c.nc.SetReadDeadline(time.Time{})
	if _, err := c.r.Peek(1); err != nil {
		return 0, nil, err
	}
	c.nc.SetReadDeadline(time.Now().Add(c.fe.cfg.ReadTimeout))
	return wire.ReadFrameBuffer(c.r)
}

func (c *fconn) serve() {
	defer c.nc.Close()
	defer c.cancel()
	c.r = bufio.NewReader(c.nc)
	c.inflight = make(map[uint32]context.CancelFunc)

	// Handshake, same protocol as internal/server.
	c.nc.SetReadDeadline(time.Now().Add(c.fe.cfg.ReadTimeout))
	t, fb, err := wire.ReadFrameBuffer(c.r)
	if err != nil {
		return
	}
	if t != wire.FrameHello {
		fb.Release()
		c.writeError(0, wire.CodeProtocol, fmt.Sprintf("expected hello, got %s", t))
		return
	}
	hello, err := wire.DecodeHello(fb.Bytes())
	fb.Release()
	if err != nil {
		c.writeError(0, wire.CodeProtocol, err.Error())
		return
	}
	if hello.Version != wire.Version {
		c.writeError(0, wire.CodeProtocol,
			fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Version, wire.Version))
		return
	}
	ack := &wire.HelloAck{Version: wire.Version, Server: FrontendName}
	if err := c.writeFrame(wire.FrameHelloAck, ack.Encode()); err != nil {
		return
	}

	for {
		t, fb, err := c.readFrame()
		if err != nil {
			break
		}
		switch t {
		case wire.FrameQuery:
			q, err := wire.DecodeQuery(fb.Bytes())
			fb.Release()
			if err != nil {
				c.writeError(0, wire.CodeProtocol, err.Error())
				goto out
			}
			c.qwg.Add(1)
			go func() {
				defer c.qwg.Done()
				c.handleQuery(q)
			}()
		case wire.FrameExplain:
			ex, err := wire.DecodeExplain(fb.Bytes())
			fb.Release()
			if err != nil {
				c.writeError(0, wire.CodeProtocol, err.Error())
				goto out
			}
			c.qwg.Add(1)
			go func() {
				defer c.qwg.Done()
				c.handleExplain(ex)
			}()
		case wire.FrameCancel:
			cf, err := wire.DecodeCancel(fb.Bytes())
			fb.Release()
			if err != nil {
				c.writeError(0, wire.CodeProtocol, err.Error())
				goto out
			}
			// Canceling the distributed query's context aborts every
			// in-flight shard sub-query: each pooled connection's cancel
			// watcher fires and sends a wire Cancel frame to its shard.
			c.imu.Lock()
			if cancel, ok := c.inflight[cf.ID]; ok {
				cancel()
			}
			c.imu.Unlock()
		case wire.FramePing:
			fb.Release()
			c.writeFrame(wire.FramePong, nil)
		case wire.FrameSetOption:
			so, err := wire.DecodeSetOption(fb.Bytes())
			fb.Release()
			if err != nil {
				c.writeError(0, wire.CodeProtocol, err.Error())
				goto out
			}
			c.handleSetOption(so)
		case wire.FrameGetProfiles:
			fb.Release()
			c.writeError(0, wire.CodeProtocol,
				"coordinator holds no flight recorder; ask the shard servers for profiles")
		default:
			fb.Release()
			c.writeError(0, wire.CodeProtocol, fmt.Sprintf("unexpected %s frame", t))
			goto out
		}
	}
out:
	c.cancel()
	c.qwg.Wait()
}

// handleSetOption applies one session option. TRACE, PARTIAL, and
// PARALLEL work as on a single olapd (PARTIAL being coordinator-only);
// CACHE is rejected because the coordinator holds no result cache —
// the shards' caches still apply to the sub-queries.
func (c *fconn) handleSetOption(so *wire.SetOption) {
	onOff := func(set func(bool)) bool {
		switch strings.ToLower(so.Value) {
		case "on":
			set(true)
		case "off":
			set(false)
		default:
			c.writeError(so.ID, wire.CodeProtocol,
				fmt.Sprintf("bad value %q for option %s (want on|off)", so.Value, strings.ToUpper(so.Name)))
			return false
		}
		return true
	}
	switch strings.ToUpper(so.Name) {
	case "TRACE":
		if !onOff(c.traceOn.Store) {
			return
		}
	case "PARTIAL":
		if !onOff(c.partial.Store) {
			return
		}
	case "PARALLEL":
		n, err := strconv.Atoi(strings.TrimSpace(so.Value))
		if err != nil || n < 0 {
			c.writeError(so.ID, wire.CodeProtocol,
				fmt.Sprintf("bad value %q for option PARALLEL (want a non-negative integer)", so.Value))
			return
		}
		c.workers.Store(int32(n))
	case "CACHE":
		c.writeError(so.ID, wire.CodeProtocol,
			"coordinator holds no result cache (shard caches still serve sub-queries)")
		return
	default:
		c.writeError(so.ID, wire.CodeProtocol, fmt.Sprintf("unknown session option %q", so.Name))
		return
	}
	c.writeFrame(wire.FrameOptionAck, (&wire.OptionAck{ID: so.ID}).Encode())
}

func (c *fconn) registerQuery(id uint32, cancel context.CancelFunc) {
	c.imu.Lock()
	c.inflight[id] = cancel
	c.imu.Unlock()
}

func (c *fconn) unregisterQuery(id uint32) {
	c.imu.Lock()
	delete(c.inflight, id)
	c.imu.Unlock()
}

// errCode maps a distributed query failure onto a wire error code:
// shard-side typed errors keep their code, everything else is an exec
// failure.
func errCode(err error) wire.ErrorCode {
	var ce *client.Error
	if errors.As(err, &ce) {
		return wire.ErrorCode(ce.Code)
	}
	return wire.CodeExec
}

// handleQuery runs one distributed query end to end and streams the
// merged result back.
func (c *fconn) handleQuery(q *wire.Query) {
	if q.Engine > wire.Bitmap {
		c.writeError(q.ID, wire.CodeProtocol, fmt.Sprintf("unknown engine %d", uint8(q.Engine)))
		return
	}
	if !c.fe.beginQuery() {
		c.writeError(q.ID, wire.CodeShutdown, "coordinator is draining")
		return
	}
	defer c.fe.endQuery()

	ctx, cancel := context.WithCancel(c.ctx)
	defer cancel()
	c.registerQuery(q.ID, cancel)
	defer c.unregisterQuery(q.ID)

	res, err := c.fe.co.Query(ctx, q.SQL, client.Engine(q.Engine), QueryOpts{
		Partial: c.partial.Load(),
		Trace:   c.traceOn.Load(),
		Workers: int(c.workers.Load()),
		TraceID: q.TraceID,
	})
	if err != nil {
		if ctx.Err() != nil {
			c.writeError(q.ID, wire.CodeCanceled, "query canceled")
			return
		}
		c.writeError(q.ID, errCode(err), err.Error())
		return
	}

	hdr := &wire.ResultHeader{
		ID:         q.ID,
		Plan:       res.Plan,
		Engine:     wire.Engine(res.Engine),
		GroupAttrs: res.GroupAttrs,
		Aggs:       res.Aggs,
	}
	if err := c.writeFrame(wire.FrameResultHeader, hdr.Encode()); err != nil {
		return
	}
	batch := c.fe.cfg.BatchRows
	for off := 0; off < len(res.Rows); off += batch {
		if ctx.Err() != nil {
			c.writeError(q.ID, wire.CodeCanceled, "query canceled mid-stream")
			return
		}
		end := off + batch
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		rb := &wire.RowBatch{ID: q.ID, Rows: make([]wire.Row, 0, end-off)}
		for _, r := range res.Rows[off:end] {
			rb.Rows = append(rb.Rows, wire.Row{
				Groups: r.Groups, Sum: r.Sum, Count: r.Count, Min: r.Min, Max: r.Max,
			})
		}
		if err := c.writeFrame(wire.FrameRowBatch, rb.Encode()); err != nil {
			return
		}
	}
	done := &wire.ResultDone{
		ID:        q.ID,
		ElapsedNS: res.Elapsed.Nanoseconds(),
		Rows:      int64(len(res.Rows)),
		QueryID:   res.QueryID,
		Partial:   res.PartialJSON(),
	}
	if c.traceOn.Load() {
		done.Trace = res.Trace
	}
	c.writeFrame(wire.FrameResultDone, done.Encode())
}

// handleExplain forwards the explanation request to a shard.
func (c *fconn) handleExplain(ex *wire.Explain) {
	if !c.fe.beginQuery() {
		c.writeError(ex.ID, wire.CodeShutdown, "coordinator is draining")
		return
	}
	defer c.fe.endQuery()

	ctx, cancel := context.WithCancel(c.ctx)
	defer cancel()
	c.registerQuery(ex.ID, cancel)
	defer c.unregisterQuery(ex.ID)

	expl, err := c.fe.co.Explain(ctx, ex.SQL, client.Engine(ex.Engine))
	if err != nil {
		if ctx.Err() != nil {
			c.writeError(ex.ID, wire.CodeCanceled, "query canceled")
			return
		}
		c.writeError(ex.ID, errCode(err), err.Error())
		return
	}
	out := &wire.ExplainResult{
		ID:     ex.ID,
		Chosen: expl.Chosen,
		Engine: wire.Engine(expl.Engine),
		Text:   expl.Text,
	}
	if !strings.HasSuffix(out.Text, "\n") {
		out.Text += "\n"
	}
	c.writeFrame(wire.FrameExplainResult, out.Encode())
}
