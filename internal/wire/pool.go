package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MaxPayload is the canonical name of the per-frame payload bound. It
// must be checked against a received length prefix before any buffer —
// pooled or not — is sized from it.
const MaxPayload = MaxFrameSize

// maxPooledBuffer bounds what Release returns to the pool; a rare huge
// frame's buffer is dropped for the GC instead of pinning MBs forever.
const maxPooledBuffer = 1 << 20

// Buffer is a pooled frame payload. Bytes is valid until Release; after
// Release the buffer must not be touched (its backing array is handed to
// the next reader).
type Buffer struct {
	b []byte
}

// Bytes returns the payload. It aliases pooled memory — decode before
// Release, and copy anything retained.
func (b *Buffer) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.b
}

// Release returns the buffer to the frame pool. Safe on nil.
func (b *Buffer) Release() {
	if b == nil {
		return
	}
	if cap(b.b) > maxPooledBuffer {
		return // let the GC take the rare oversized frame
	}
	b.b = b.b[:0]
	framePool.Put(b)
}

var framePool = sync.Pool{New: func() any { return &Buffer{b: make([]byte, 0, 4096)} }}

// getBuffer returns a pooled buffer sized to n bytes. The caller must
// have validated n against MaxPayload first: the bound is what makes a
// hostile length prefix unable to size an allocation.
func getBuffer(n int) *Buffer {
	fb := framePool.Get().(*Buffer)
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	} else {
		fb.b = fb.b[:n]
	}
	return fb
}

// ReadFrameBuffer reads one frame into a pooled buffer, enforcing
// MaxPayload before sizing anything from the length prefix. The caller
// owns the returned buffer and must Release it once the payload is
// decoded (both sides' frame decoders copy everything they retain, so
// release-after-decode is safe).
func ReadFrameBuffer(r io.Reader) (FrameType, *Buffer, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds %d bytes", n, MaxPayload)
	}
	fb := getBuffer(int(n))
	if _, err := io.ReadFull(r, fb.b); err != nil {
		fb.Release()
		return 0, nil, err
	}
	return FrameType(hdr[4]), fb, nil
}
