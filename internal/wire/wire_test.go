package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// roundTrip pushes one frame through WriteFrame/ReadFrame.
func roundTrip(t *testing.T, ft FrameType, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ft, payload); err != nil {
		t.Fatalf("WriteFrame(%s): %v", ft, err)
	}
	got, p, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame(%s): %v", ft, err)
	}
	if got != ft {
		t.Fatalf("frame type = %s, want %s", got, ft)
	}
	return p
}

func TestFrameRoundTrips(t *testing.T) {
	hello := &Hello{Version: Version}
	h, err := DecodeHello(roundTrip(t, FrameHello, hello.Encode()))
	if err != nil || h.Version != Version {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}

	ack := &HelloAck{Version: Version, Server: "repro-olapd"}
	a, err := DecodeHelloAck(roundTrip(t, FrameHelloAck, ack.Encode()))
	if err != nil || *a != *ack {
		t.Fatalf("hello-ack round trip: %+v, %v", a, err)
	}

	q := &Query{ID: 7, Engine: Bitmap, SQL: "select sum(volume) from fact group by h01"}
	q2, err := DecodeQuery(roundTrip(t, FrameQuery, q.Encode()))
	if err != nil || *q2 != *q {
		t.Fatalf("query round trip: %+v, %v", q2, err)
	}

	ex := &Explain{ID: 9, Engine: Auto, SQL: "explain select sum(volume) from fact"}
	ex2, err := DecodeExplain(roundTrip(t, FrameExplain, ex.Encode()))
	if err != nil || *ex2 != *ex {
		t.Fatalf("explain round trip: %+v, %v", ex2, err)
	}

	c := &Cancel{ID: 7}
	c2, err := DecodeCancel(roundTrip(t, FrameCancel, c.Encode()))
	if err != nil || *c2 != *c {
		t.Fatalf("cancel round trip: %+v, %v", c2, err)
	}

	hd := &ResultHeader{ID: 7, Plan: "bitmap-factfile", Engine: Bitmap,
		GroupAttrs: []string{"h01", "h11"}, Aggs: []uint8{0, 1}}
	hd2, err := DecodeResultHeader(roundTrip(t, FrameResultHeader, hd.Encode()))
	if err != nil {
		t.Fatalf("result-header round trip: %v", err)
	}
	if hd2.ID != hd.ID || hd2.Plan != hd.Plan || hd2.Engine != hd.Engine ||
		len(hd2.GroupAttrs) != 2 || hd2.GroupAttrs[1] != "h11" ||
		len(hd2.Aggs) != 2 || hd2.Aggs[1] != 1 {
		t.Fatalf("result-header round trip: %+v", hd2)
	}

	rb := &RowBatch{ID: 7, Rows: []Row{
		{Groups: []string{"a", "b"}, Sum: -5, Count: 2, Min: -9, Max: 4},
		{Groups: []string{"c", "d"}, Sum: 1 << 40, Count: 1, Min: 1 << 40, Max: 1 << 40},
	}}
	rb2, err := DecodeRowBatch(roundTrip(t, FrameRowBatch, rb.Encode()))
	if err != nil {
		t.Fatalf("row-batch round trip: %v", err)
	}
	if len(rb2.Rows) != 2 || rb2.Rows[0].Sum != -5 || rb2.Rows[0].Groups[1] != "b" ||
		rb2.Rows[1].Max != 1<<40 {
		t.Fatalf("row-batch round trip: %+v", rb2)
	}

	dn := &ResultDone{ID: 7, ElapsedNS: 123456, Rows: 42}
	dn2, err := DecodeResultDone(roundTrip(t, FrameResultDone, dn.Encode()))
	if err != nil || *dn2 != *dn {
		t.Fatalf("result-done round trip: %+v, %v", dn2, err)
	}

	// A coordinator's partial completeness report rides ResultDone.
	dp := &ResultDone{ID: 8, ElapsedNS: 9, Rows: 1, Partial: `[{"shard":1,"ok":false}]`}
	dp2, err := DecodeResultDone(roundTrip(t, FrameResultDone, dp.Encode()))
	if err != nil || *dp2 != *dp {
		t.Fatalf("partial result-done round trip: %+v, %v", dp2, err)
	}

	sq := &SubQuery{ID: 11, Engine: StarJoin, SQL: "select sum(volume) from fact group by h01",
		TraceID: "q-0042", Shard: 2, Shards: 3, Workers: 4}
	sq2, err := DecodeSubQuery(roundTrip(t, FrameSubQuery, sq.Encode()))
	if err != nil || *sq2 != *sq {
		t.Fatalf("sub-query round trip: %+v, %v", sq2, err)
	}

	er := &ExplainResult{ID: 9, Chosen: "array-consolidate", Engine: Array, Text: "plan: ..."}
	er2, err := DecodeExplainResult(roundTrip(t, FrameExplainResult, er.Encode()))
	if err != nil || *er2 != *er {
		t.Fatalf("explain-result round trip: %+v, %v", er2, err)
	}

	ef := &ErrorFrame{ID: 7, Code: CodeAdmission, Message: "queue full"}
	ef2, err := DecodeError(roundTrip(t, FrameError, ef.Encode()))
	if err != nil || *ef2 != *ef {
		t.Fatalf("error round trip: %+v, %v", ef2, err)
	}
	if !IsCode(ef2.Err(), CodeAdmission) {
		t.Fatalf("IsCode(CodeAdmission) = false for %v", ef2.Err())
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrameSize+1)
	hdr[4] = byte(FrameQuery)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: err = %v, want size error", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameQuery, (&Query{ID: 1, SQL: "select"}).Encode()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 4, len(full) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated frame at %d bytes read without error", cut)
		}
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	if _, err := DecodeHello((&Hello{Version: 99}).Encode()[1:]); err == nil {
		t.Fatal("truncated hello decoded")
	}
	bad := (&Hello{Version: Version}).Encode()
	binary.BigEndian.PutUint32(bad, 0xdeadbeef)
	if _, err := DecodeHello(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	// A row batch claiming more rows than bytes must not allocate them.
	p := binary.BigEndian.AppendUint32(nil, 1)
	p = binary.AppendUvarint(p, 1<<40)
	if _, err := DecodeRowBatch(p); err == nil {
		t.Fatal("row batch with absurd count decoded")
	}
	// Trailing bytes are a protocol error.
	q := append((&Cancel{ID: 3}).Encode(), 0x00)
	if _, err := DecodeCancel(q); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: err = %v", err)
	}
	// A sub-query truncated before its shard range must not decode.
	sq := (&SubQuery{ID: 1, SQL: "select", Shard: 1, Shards: 3}).Encode()
	if _, err := DecodeSubQuery(sq[:len(sq)-2]); err == nil {
		t.Fatal("truncated sub-query decoded")
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}
