package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestReadFrameBufferRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := (&Query{ID: 7, Engine: Array, SQL: "select sum(x)"}).Encode()
	if err := WriteFrame(&buf, FrameQuery, want); err != nil {
		t.Fatal(err)
	}
	ft, fb, err := ReadFrameBuffer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameQuery {
		t.Fatalf("frame type = %s, want query", ft)
	}
	if !bytes.Equal(fb.Bytes(), want) {
		t.Fatalf("payload mismatch: %x vs %x", fb.Bytes(), want)
	}
	q, err := DecodeQuery(fb.Bytes())
	fb.Release()
	if err != nil || q.ID != 7 || q.SQL != "select sum(x)" {
		t.Fatalf("decode after pooled read: %+v, %v", q, err)
	}
}

// A hostile length prefix must be rejected before any buffer — pooled or
// heap — is sized from it. This is the attacker-supplied-length guard:
// only the 5-byte header is read, nothing is allocated.
func TestReadFrameBufferRejectsOversizedLength(t *testing.T) {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxPayload+1)
	hdr[4] = byte(FrameQuery)
	_, fb, err := ReadFrameBuffer(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: err = %v, want size error", err)
	}
	if fb != nil {
		t.Fatal("oversized frame returned a buffer")
	}
	// Same guard with the absolute maximum uint32 — the worst a hostile
	// peer can claim.
	binary.BigEndian.PutUint32(hdr[:4], ^uint32(0))
	if _, _, err := ReadFrameBuffer(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("max-uint32 length prefix read without error")
	}
}

func TestReadFrameBufferTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePing, bytes.Repeat([]byte{0xab}, 64)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	_, fb, err := ReadFrameBuffer(bytes.NewReader(full[:len(full)-1]))
	if err == nil {
		t.Fatal("truncated payload read without error")
	}
	if fb != nil {
		t.Fatal("truncated read leaked a buffer")
	}
	if _, _, err := ReadFrameBuffer(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestBufferReleaseNilAndReuse(t *testing.T) {
	var nilBuf *Buffer
	nilBuf.Release() // must not panic
	if nilBuf.Bytes() != nil {
		t.Fatal("nil buffer has bytes")
	}
	fb := getBuffer(16)
	if len(fb.b) != 16 {
		t.Fatalf("getBuffer(16) len = %d", len(fb.b))
	}
	fb.Release()
	// Oversized buffers are dropped, not pooled.
	big := getBuffer(maxPooledBuffer + 1)
	big.Release()
}

func BenchmarkWriteFramePooled(b *testing.B) {
	payload := (&Query{ID: 1, Engine: Array, SQL: "select sum(x) from f group by a"}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, FrameQuery, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrameBuffer(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameQuery, (&Query{ID: 1, SQL: "select"}).Encode()); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		_, fb, err := ReadFrameBuffer(r)
		if err != nil {
			b.Fatal(err)
		}
		fb.Release()
	}
}
