package wire

import (
	"encoding/binary"
	"fmt"
)

// Engine selects the evaluation strategy for a remote query. Values
// mirror the engine constants of the repro package (exec.Engine), which
// is what the server maps them onto.
type Engine uint8

// Engines.
const (
	Auto     Engine = 0
	Array    Engine = 1
	StarJoin Engine = 2
	Bitmap   Engine = 3
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case Auto:
		return "auto"
	case Array:
		return "array"
	case StarJoin:
		return "starjoin"
	case Bitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine maps an engine name to its wire value.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "auto", "":
		return Auto, nil
	case "array":
		return Array, nil
	case "starjoin":
		return StarJoin, nil
	case "bitmap":
		return Bitmap, nil
	default:
		return Auto, fmt.Errorf("wire: unknown engine %q", name)
	}
}

// Row is one result group as it crosses the wire: the group labels plus
// the full aggregate state, so any AggFunc can be read client-side.
type Row struct {
	Groups []string
	Sum    int64
	Count  int64
	Min    int64
	Max    int64
}

// Hello is the client's opening frame.
type Hello struct {
	Version uint16
}

// HelloAck is the server's handshake answer.
type HelloAck struct {
	Version uint16
	Server  string
}

// Query asks the server to run sql on the chosen engine. ID is chosen
// by the client and echoed on every response frame, so a Cancel can
// name the query it aborts — it is per-connection request correlation,
// not the query's identity. TraceID is that identity: the client-minted
// query ID the server stamps into its trace, slow-query log, flight
// recorder, and pprof labels (empty lets the server mint one).
type Query struct {
	ID      uint32
	Engine  Engine
	SQL     string
	TraceID string
}

// Explain asks for the planner's explanation (rendered server-side);
// EXPLAIN ANALYZE text also executes the query.
type Explain Query

// SubQuery is a coordinator's scatter frame: run sql on the chosen
// engine restricted to shard Shard of Shards (the server's standard
// chunk-range / extent-range split), answering with the usual result
// stream. TraceID is the originating distributed query's identity, so
// the shard's trace, slow-query log, and flight-recorder entries stitch
// to the coordinator's. Workers > 0 overrides the session's parallel
// degree for this sub-query only.
type SubQuery struct {
	ID      uint32
	Engine  Engine
	SQL     string
	TraceID string
	Shard   uint32
	Shards  uint32
	Workers uint32
}

// Cancel asks the server to abandon the identified in-flight query.
type Cancel struct {
	ID uint32
}

// SetOption flips a per-session switch by name: "CACHE" on|off,
// "PARALLEL" n, or "TRACE" on|off (case-insensitive); unknown names or
// values are answered with Error{CodeProtocol} and the session
// continues.
type SetOption struct {
	ID    uint32
	Name  string
	Value string
}

// OptionAck acknowledges a SetOption frame.
type OptionAck struct {
	ID uint32
}

// ResultHeader opens a result stream: the chosen plan and the result
// schema (group attributes and aggregate functions, as AggFunc values).
type ResultHeader struct {
	ID         uint32
	Plan       string
	Engine     Engine
	GroupAttrs []string
	Aggs       []uint8
}

// RowBatch carries one bounded batch of result rows.
type RowBatch struct {
	ID   uint32
	Rows []Row
}

// ResultDone closes a result stream with the run totals. QueryID echoes
// the query's trace identity (the client's TraceID, or the one the
// server minted); Trace carries the rendered span tree when the
// session has TRACE on, empty otherwise. Partial is empty for a
// complete answer; a coordinator answering under the PARTIAL session
// option fills it with the JSON per-shard completeness report when one
// or more shards could not be reached.
type ResultDone struct {
	ID        uint32
	ElapsedNS int64
	Rows      int64
	QueryID   string
	Trace     string
	Partial   string
}

// ExplainResult answers an Explain frame with the rendered explanation.
type ExplainResult struct {
	ID     uint32
	Chosen string
	Engine Engine
	Text   string
}

// ErrorFrame reports a request failure with its typed code. QueryID
// carries the failed query's trace identity when the failure happened
// inside an identified execution (empty for protocol-level errors), so
// error frames join the flight recorder and log like results do.
type ErrorFrame struct {
	ID      uint32
	Code    ErrorCode
	Message string
	QueryID string
}

// GetProfiles asks the server for flight-recorder profiles: the
// QueryID's single profile when set, otherwise the Limit most recent
// (0 = the whole ring) plus the retained slowest set.
type GetProfiles struct {
	ID      uint32
	QueryID string
	Limit   uint32
}

// ProfilesResult answers GetProfiles with the profiles rendered as
// JSON — the same shape /debug/queries serves.
type ProfilesResult struct {
	ID   uint32
	JSON string
}

// Err converts the frame to the *Error callers switch on.
func (f *ErrorFrame) Err() *Error { return &Error{Code: f.Code, Message: f.Message} }

// ---- payload encoding ----
//
// Payload fields are appended in declaration order: fixed-width integers
// big-endian, counts and lengths as uvarints, aggregate values as zigzag
// varints (binary.AppendVarint), strings as uvarint length + bytes.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

// dec is a cursor over one frame payload; the first malformed field
// poisons it and every later read reports the same error.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or malformed frame payload")
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) strings() []string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) { // each string needs >= 1 byte
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

// done checks that the payload was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in frame payload", len(d.b))
	}
	return nil
}

// ---- per-frame encode/decode ----

// Encode renders the Hello payload.
func (f *Hello) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, Magic)
	return binary.BigEndian.AppendUint16(b, f.Version)
}

// DecodeHello parses a Hello payload, validating the magic.
func DecodeHello(p []byte) (*Hello, error) {
	d := &dec{b: p}
	magic := d.u32()
	f := &Hello{Version: d.u16()}
	if err := d.done(); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("wire: bad magic 0x%08x (not an olapd client?)", magic)
	}
	return f, nil
}

// Encode renders the HelloAck payload.
func (f *HelloAck) Encode() []byte {
	b := binary.BigEndian.AppendUint16(nil, f.Version)
	return appendString(b, f.Server)
}

// DecodeHelloAck parses a HelloAck payload.
func DecodeHelloAck(p []byte) (*HelloAck, error) {
	d := &dec{b: p}
	f := &HelloAck{Version: d.u16(), Server: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

func encodeQuery(id uint32, engine Engine, sql, traceID string) []byte {
	b := binary.BigEndian.AppendUint32(nil, id)
	b = append(b, byte(engine))
	b = appendString(b, sql)
	return appendString(b, traceID)
}

func decodeQuery(p []byte) (uint32, Engine, string, string, error) {
	d := &dec{b: p}
	id := d.u32()
	engine := Engine(d.u8())
	sql := d.str()
	traceID := d.str()
	if err := d.done(); err != nil {
		return 0, 0, "", "", err
	}
	return id, engine, sql, traceID, nil
}

// Encode renders the Query payload.
func (f *Query) Encode() []byte { return encodeQuery(f.ID, f.Engine, f.SQL, f.TraceID) }

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (*Query, error) {
	id, engine, sql, traceID, err := decodeQuery(p)
	if err != nil {
		return nil, err
	}
	return &Query{ID: id, Engine: engine, SQL: sql, TraceID: traceID}, nil
}

// Encode renders the Explain payload.
func (f *Explain) Encode() []byte { return encodeQuery(f.ID, f.Engine, f.SQL, f.TraceID) }

// Encode renders the SubQuery payload: the Query layout followed by the
// shard window and worker override as uvarints.
func (f *SubQuery) Encode() []byte {
	b := encodeQuery(f.ID, f.Engine, f.SQL, f.TraceID)
	b = binary.AppendUvarint(b, uint64(f.Shard))
	b = binary.AppendUvarint(b, uint64(f.Shards))
	return binary.AppendUvarint(b, uint64(f.Workers))
}

// DecodeSubQuery parses a SubQuery payload.
func DecodeSubQuery(p []byte) (*SubQuery, error) {
	d := &dec{b: p}
	f := &SubQuery{
		ID:      d.u32(),
		Engine:  Engine(d.u8()),
		SQL:     d.str(),
		TraceID: d.str(),
		Shard:   uint32(d.uvarint()),
		Shards:  uint32(d.uvarint()),
		Workers: uint32(d.uvarint()),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeExplain parses an Explain payload.
func DecodeExplain(p []byte) (*Explain, error) {
	id, engine, sql, traceID, err := decodeQuery(p)
	if err != nil {
		return nil, err
	}
	return &Explain{ID: id, Engine: engine, SQL: sql, TraceID: traceID}, nil
}

// Encode renders the Cancel payload.
func (f *Cancel) Encode() []byte { return binary.BigEndian.AppendUint32(nil, f.ID) }

// DecodeCancel parses a Cancel payload.
func DecodeCancel(p []byte) (*Cancel, error) {
	d := &dec{b: p}
	f := &Cancel{ID: d.u32()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the SetOption payload.
func (f *SetOption) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = appendString(b, f.Name)
	return appendString(b, f.Value)
}

// DecodeSetOption parses a SetOption payload.
func DecodeSetOption(p []byte) (*SetOption, error) {
	d := &dec{b: p}
	f := &SetOption{ID: d.u32(), Name: d.str(), Value: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the OptionAck payload.
func (f *OptionAck) Encode() []byte { return binary.BigEndian.AppendUint32(nil, f.ID) }

// DecodeOptionAck parses an OptionAck payload.
func DecodeOptionAck(p []byte) (*OptionAck, error) {
	d := &dec{b: p}
	f := &OptionAck{ID: d.u32()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the ResultHeader payload.
func (f *ResultHeader) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = appendString(b, f.Plan)
	b = append(b, byte(f.Engine))
	b = appendStrings(b, f.GroupAttrs)
	b = binary.AppendUvarint(b, uint64(len(f.Aggs)))
	return append(b, f.Aggs...)
}

// DecodeResultHeader parses a ResultHeader payload.
func DecodeResultHeader(p []byte) (*ResultHeader, error) {
	d := &dec{b: p}
	f := &ResultHeader{
		ID:         d.u32(),
		Plan:       d.str(),
		Engine:     Engine(d.u8()),
		GroupAttrs: d.strings(),
	}
	n := d.uvarint()
	for i := uint64(0); i < n; i++ {
		f.Aggs = append(f.Aggs, d.u8())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the RowBatch payload.
func (f *RowBatch) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = binary.AppendUvarint(b, uint64(len(f.Rows)))
	for i := range f.Rows {
		r := &f.Rows[i]
		b = appendStrings(b, r.Groups)
		b = binary.AppendVarint(b, r.Sum)
		b = binary.AppendVarint(b, r.Count)
		b = binary.AppendVarint(b, r.Min)
		b = binary.AppendVarint(b, r.Max)
	}
	return b
}

// DecodeRowBatch parses a RowBatch payload.
func DecodeRowBatch(p []byte) (*RowBatch, error) {
	d := &dec{b: p}
	f := &RowBatch{ID: d.u32()}
	n := d.uvarint()
	if d.err == nil && n <= uint64(len(d.b)) { // each row needs >= 1 byte
		f.Rows = make([]Row, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		f.Rows = append(f.Rows, Row{
			Groups: d.strings(),
			Sum:    d.varint(),
			Count:  d.varint(),
			Min:    d.varint(),
			Max:    d.varint(),
		})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the ResultDone payload.
func (f *ResultDone) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = binary.AppendVarint(b, f.ElapsedNS)
	b = binary.AppendVarint(b, f.Rows)
	b = appendString(b, f.QueryID)
	b = appendString(b, f.Trace)
	return appendString(b, f.Partial)
}

// DecodeResultDone parses a ResultDone payload.
func DecodeResultDone(p []byte) (*ResultDone, error) {
	d := &dec{b: p}
	f := &ResultDone{
		ID:        d.u32(),
		ElapsedNS: d.varint(),
		Rows:      d.varint(),
		QueryID:   d.str(),
		Trace:     d.str(),
		Partial:   d.str(),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the ExplainResult payload.
func (f *ExplainResult) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = appendString(b, f.Chosen)
	b = append(b, byte(f.Engine))
	return appendString(b, f.Text)
}

// DecodeExplainResult parses an ExplainResult payload.
func DecodeExplainResult(p []byte) (*ExplainResult, error) {
	d := &dec{b: p}
	f := &ExplainResult{ID: d.u32(), Chosen: d.str(), Engine: Engine(d.u8()), Text: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the Error payload.
func (f *ErrorFrame) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(f.Code))
	b = appendString(b, f.Message)
	return appendString(b, f.QueryID)
}

// DecodeError parses an Error payload.
func DecodeError(p []byte) (*ErrorFrame, error) {
	d := &dec{b: p}
	f := &ErrorFrame{ID: d.u32(), Code: ErrorCode(d.u16()), Message: d.str(), QueryID: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the GetProfiles payload.
func (f *GetProfiles) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = appendString(b, f.QueryID)
	return binary.AppendUvarint(b, uint64(f.Limit))
}

// DecodeGetProfiles parses a GetProfiles payload.
func DecodeGetProfiles(p []byte) (*GetProfiles, error) {
	d := &dec{b: p}
	f := &GetProfiles{ID: d.u32(), QueryID: d.str(), Limit: uint32(d.uvarint())}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// Encode renders the ProfilesResult payload.
func (f *ProfilesResult) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	return appendString(b, f.JSON)
}

// DecodeProfilesResult parses a ProfilesResult payload.
func DecodeProfilesResult(p []byte) (*ProfilesResult, error) {
	d := &dec{b: p}
	f := &ProfilesResult{ID: d.u32(), JSON: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// IngestCell is one cell state in an Ingest frame: dimension keys plus
// the new measure, or a deletion. States are absolute, so retransmits
// (and server-side WAL replays) are idempotent.
type IngestCell struct {
	Keys   []int64
	Value  int64
	Delete bool
}

// Ingest is the HTAP write frame: apply one batch of cell states
// through the server's delta store. Answered with IngestAck, or Error
// (unknown keys, no array, backpressure timeout).
type Ingest struct {
	ID    uint32
	Cells []IngestCell
}

// Encode renders the Ingest payload.
func (f *Ingest) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = binary.AppendUvarint(b, uint64(len(f.Cells)))
	for i := range f.Cells {
		c := &f.Cells[i]
		b = binary.AppendUvarint(b, uint64(len(c.Keys)))
		for _, k := range c.Keys {
			b = binary.AppendVarint(b, k)
		}
		b = binary.AppendVarint(b, c.Value)
		if c.Delete {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeIngest parses an Ingest payload.
func DecodeIngest(p []byte) (*Ingest, error) {
	d := &dec{b: p}
	f := &Ingest{ID: d.u32()}
	n := d.uvarint()
	if d.err == nil && n <= uint64(len(d.b)) { // each cell needs >= 1 byte
		f.Cells = make([]IngestCell, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		nk := d.uvarint()
		if d.err != nil || nk > uint64(len(d.b))+1 {
			d.fail()
			break
		}
		c := IngestCell{Keys: make([]int64, 0, nk)}
		for k := uint64(0); k < nk; k++ {
			c.Keys = append(c.Keys, d.varint())
		}
		c.Value = d.varint()
		c.Delete = d.u8() != 0
		f.Cells = append(f.Cells, c)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// IngestAck acknowledges an Ingest frame once the batch is durable in
// the server's delta WAL and visible to queries.
type IngestAck struct {
	ID    uint32
	Cells uint32 // cells applied
}

// Encode renders the IngestAck payload.
func (f *IngestAck) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	return binary.AppendUvarint(b, uint64(f.Cells))
}

// DecodeIngestAck parses an IngestAck payload.
func DecodeIngestAck(p []byte) (*IngestAck, error) {
	d := &dec{b: p}
	f := &IngestAck{ID: d.u32(), Cells: uint32(d.uvarint())}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// DeltaStatsReq asks for the server's delta-store counters.
type DeltaStatsReq struct {
	ID uint32
}

// Encode renders the DeltaStats payload.
func (f *DeltaStatsReq) Encode() []byte { return binary.BigEndian.AppendUint32(nil, f.ID) }

// DecodeDeltaStatsReq parses a DeltaStats payload.
func DecodeDeltaStatsReq(p []byte) (*DeltaStatsReq, error) {
	d := &dec{b: p}
	f := &DeltaStatsReq{ID: d.u32()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// DeltaStatsResult answers DeltaStats with the store's counters.
type DeltaStatsResult struct {
	ID            uint32
	Cells         int64
	Bytes         int64
	DirtyChunks   int64
	TouchedChunks int64
	BudgetBytes   int64
	Compactions   int64
}

// Encode renders the DeltaStatsResult payload.
func (f *DeltaStatsResult) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	b = binary.AppendVarint(b, f.Cells)
	b = binary.AppendVarint(b, f.Bytes)
	b = binary.AppendVarint(b, f.DirtyChunks)
	b = binary.AppendVarint(b, f.TouchedChunks)
	b = binary.AppendVarint(b, f.BudgetBytes)
	return binary.AppendVarint(b, f.Compactions)
}

// DecodeDeltaStatsResult parses a DeltaStatsResult payload.
func DecodeDeltaStatsResult(p []byte) (*DeltaStatsResult, error) {
	d := &dec{b: p}
	f := &DeltaStatsResult{
		ID:            d.u32(),
		Cells:         d.varint(),
		Bytes:         d.varint(),
		DirtyChunks:   d.varint(),
		TouchedChunks: d.varint(),
		BudgetBytes:   d.varint(),
		Compactions:   d.varint(),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// CompactReq asks the server to fold the delta overlay into the chunk
// store now (the manual trigger beside the background compactor).
type CompactReq struct {
	ID uint32
}

// Encode renders the Compact payload.
func (f *CompactReq) Encode() []byte { return binary.BigEndian.AppendUint32(nil, f.ID) }

// DecodeCompactReq parses a Compact payload.
func DecodeCompactReq(p []byte) (*CompactReq, error) {
	d := &dec{b: p}
	f := &CompactReq{ID: d.u32()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// CompactAck acknowledges a completed compaction.
type CompactAck struct {
	ID        uint32
	ElapsedNS int64
}

// Encode renders the CompactAck payload.
func (f *CompactAck) Encode() []byte {
	b := binary.BigEndian.AppendUint32(nil, f.ID)
	return binary.AppendVarint(b, f.ElapsedNS)
}

// DecodeCompactAck parses a CompactAck payload.
func DecodeCompactAck(p []byte) (*CompactAck, error) {
	d := &dec{b: p}
	f := &CompactAck{ID: d.u32(), ElapsedNS: d.varint()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}
