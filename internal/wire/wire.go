// Package wire is the binary protocol olapd speaks on the wire: length-
// prefixed typed frames carrying queries from client to server and
// result sets, streamed row-batch-at-a-time, back. The format is
// deliberately small — a 5-byte header (payload length + frame type)
// followed by a payload of uvarint-framed fields — so a frame can be
// produced and parsed without reflection or an IDL, and a result set
// larger than memory can cross the wire in bounded batches.
//
// Connection lifecycle:
//
//	client                          server
//	  Hello (magic, version)  --->
//	                          <---  HelloAck (version, server banner)
//	  Query (id, engine, sql) --->
//	                          <---  ResultHeader (id, plan, attrs, aggs)
//	                          <---  RowBatch (id, rows)   [repeated]
//	                          <---  ResultDone (id, elapsed, rows)
//
// An Explain frame answers with one ExplainResult frame. Any request
// can instead be answered by an Error frame carrying a typed ErrorCode;
// Cancel (id) asks the server to abandon the identified in-flight query,
// which then answers with Error{CodeCanceled}. Ping/Pong carry no
// payload and exist for connection-pool health checks. SetOption
// (id, name, value) flips a per-session switch — CACHE on|off,
// PARALLEL n, or TRACE on|off — and is acknowledged with OptionAck (id)
// or rejected with Error{CodeProtocol} without dropping the connection.
//
// Clustering: a SubQuery frame is a Query restricted to one shard's
// slice of the data (shard i of n, with an optional worker override) —
// what a cluster coordinator scatters to its data servers. It answers
// with the same ResultHeader/RowBatch/ResultDone stream; the TraceID it
// carries is the originating distributed query's, so traces and flight-
// recorder profiles stitch across nodes.
//
// Tracing: a Query frame carries the client-minted query ID (TraceID)
// that names the execution in the server's slow-query log, flight
// recorder, and pprof labels; ResultDone and Error echo it back, and
// with the session option TRACE on, ResultDone also carries the
// rendered span tree. GetProfiles (id, query-id, limit) reads the
// server's flight recorder — recent profiles, or one query by ID — and
// is answered with ProfilesResult (id, JSON).
//
// Both sides close the protocol version handshake before anything else;
// a version mismatch is reported with Error{CodeProtocol} and the
// connection is dropped.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version spoken by this build. The handshake
// rejects any other version — there is exactly one until a release has
// to interoperate with an older one. Version 2 added trace-context
// fields (query IDs on Query/ResultDone/Error, the TRACE option's span
// tree) and the GetProfiles/ProfilesResult pair. Version 3 added the
// SubQuery frame (a coordinator's shard-restricted query), the PARTIAL
// session option, and the per-shard completeness report on ResultDone.
// Version 4 added the HTAP ingest frames: Ingest/IngestAck,
// DeltaStats/DeltaStatsResult, and Compact/CompactAck.
const Version uint16 = 4

// Magic opens every Hello frame; it lets the server reject a client
// that is not speaking this protocol at all (an HTTP request, say)
// before trusting any length field.
const Magic uint32 = 0x4F4C4150 // "OLAP"

// MaxFrameSize bounds one frame's payload (16 MiB). Row batches are
// far smaller; the bound exists so a corrupt or hostile length prefix
// cannot make either side allocate unbounded memory. MaxPayload (in
// pool.go) is the canonical name; this alias predates it.
const MaxFrameSize = 16 << 20

// DefaultBatchRows is how many result rows the server packs into one
// RowBatch frame.
const DefaultBatchRows = 256

// FrameType identifies a frame's payload.
type FrameType uint8

// Frame types. Client-to-server types sit below 0x10, server-to-client
// types at or above it.
const (
	FrameHello       FrameType = 0x01
	FrameQuery       FrameType = 0x02
	FrameExplain     FrameType = 0x03
	FrameCancel      FrameType = 0x04
	FramePing        FrameType = 0x05
	FrameSetOption   FrameType = 0x06
	FrameGetProfiles FrameType = 0x07
	FrameSubQuery    FrameType = 0x08
	FrameIngest      FrameType = 0x09
	FrameDeltaStats  FrameType = 0x0A
	FrameCompact     FrameType = 0x0B

	FrameHelloAck         FrameType = 0x10
	FrameResultHeader     FrameType = 0x11
	FrameRowBatch         FrameType = 0x12
	FrameResultDone       FrameType = 0x13
	FrameExplainResult    FrameType = 0x14
	FrameError            FrameType = 0x15
	FramePong             FrameType = 0x16
	FrameOptionAck        FrameType = 0x17
	FrameProfilesResult   FrameType = 0x18
	FrameIngestAck        FrameType = 0x19
	FrameDeltaStatsResult FrameType = 0x1A
	FrameCompactAck       FrameType = 0x1B
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameQuery:
		return "query"
	case FrameExplain:
		return "explain"
	case FrameCancel:
		return "cancel"
	case FramePing:
		return "ping"
	case FrameSetOption:
		return "set-option"
	case FrameGetProfiles:
		return "get-profiles"
	case FrameSubQuery:
		return "sub-query"
	case FrameIngest:
		return "ingest"
	case FrameDeltaStats:
		return "delta-stats"
	case FrameCompact:
		return "compact"
	case FrameHelloAck:
		return "hello-ack"
	case FrameResultHeader:
		return "result-header"
	case FrameRowBatch:
		return "row-batch"
	case FrameResultDone:
		return "result-done"
	case FrameExplainResult:
		return "explain-result"
	case FrameError:
		return "error"
	case FramePong:
		return "pong"
	case FrameOptionAck:
		return "option-ack"
	case FrameProfilesResult:
		return "profiles-result"
	case FrameIngestAck:
		return "ingest-ack"
	case FrameDeltaStatsResult:
		return "delta-stats-result"
	case FrameCompactAck:
		return "compact-ack"
	default:
		return fmt.Sprintf("frame(0x%02x)", uint8(t))
	}
}

// ErrorCode classifies an Error frame so clients can react without
// parsing message text.
type ErrorCode uint16

// Error codes.
const (
	// CodeProtocol: malformed frame, bad magic, or version mismatch.
	CodeProtocol ErrorCode = 1
	// CodeParse: the query failed to parse or compile.
	CodeParse ErrorCode = 2
	// CodeAdmission: the admission controller rejected the query (the
	// server is at max-concurrent-queries and the wait queue is full).
	CodeAdmission ErrorCode = 3
	// CodeCanceled: the query was canceled (client Cancel frame or
	// client disconnect) before it finished.
	CodeCanceled ErrorCode = 4
	// CodeExec: the query failed during execution.
	CodeExec ErrorCode = 5
	// CodeShutdown: the server is draining and accepts no new queries.
	CodeShutdown ErrorCode = 6
)

// String implements fmt.Stringer.
func (c ErrorCode) String() string {
	switch c {
	case CodeProtocol:
		return "protocol"
	case CodeParse:
		return "parse"
	case CodeAdmission:
		return "admission-rejected"
	case CodeCanceled:
		return "canceled"
	case CodeExec:
		return "exec"
	case CodeShutdown:
		return "shutting-down"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Error is the structured error a server reports for one request. It
// travels as an Error frame and is returned by the client as-is, so
// callers can switch on Code.
type Error struct {
	Code    ErrorCode
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("olapd: %s: %s", e.Code, e.Message)
}

// IsCode reports whether err is (or wraps) a wire *Error with the given
// code.
func IsCode(err error, code ErrorCode) bool {
	var we *Error
	return errors.As(err, &we) && we.Code == code
}

// headerSize is the fixed frame prefix: 4-byte big-endian payload
// length plus the 1-byte frame type.
const headerSize = 5

// WriteFrame writes one frame: header then payload, assembled in a
// pooled buffer and issued as one Write call — frames stay atomic under
// a mutex-guarded writer without a second syscall, and the steady state
// allocates nothing per frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: %s frame payload %d exceeds %d bytes", t, len(payload), MaxPayload)
	}
	fb := getBuffer(headerSize + len(payload))
	binary.BigEndian.PutUint32(fb.b, uint32(len(payload)))
	fb.b[4] = byte(t)
	copy(fb.b[headerSize:], payload)
	_, err := w.Write(fb.b)
	fb.Release()
	return err
}

// ReadFrame reads one frame into a fresh heap slice the caller owns,
// enforcing MaxPayload before allocating from the length prefix. Hot
// paths use ReadFrameBuffer instead, which reuses pooled payloads.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds %d bytes", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[4]), payload, nil
}
