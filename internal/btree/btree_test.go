package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newTestTree(t *testing.T, frames int) (*Tree, *storage.BufferPool) {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMemDiskManager(), frames)
	tr, err := Create(bp)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tr, bp
}

func TestBTreeEmpty(t *testing.T) {
	tr, _ := newTestTree(t, 8)
	n, err := tr.Len()
	if err != nil || n != 0 {
		t.Fatalf("Len = (%d, %v), want 0", n, err)
	}
	h, err := tr.Height()
	if err != nil || h != 1 {
		t.Fatalf("Height = (%d, %v), want 1", h, err)
	}
	vals, err := tr.Search(5)
	if err != nil || len(vals) != 0 {
		t.Fatalf("Search on empty = (%v, %v)", vals, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

func TestBTreeInsertSearchSmall(t *testing.T) {
	tr, bp := newTestTree(t, 16)
	for i := int64(0); i < 100; i++ {
		if err := tr.Insert(i, uint64(i*10)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	for i := int64(0); i < 100; i++ {
		vals, err := tr.Search(i)
		if err != nil {
			t.Fatalf("Search(%d): %v", i, err)
		}
		if len(vals) != 1 || vals[0] != uint64(i*10) {
			t.Fatalf("Search(%d) = %v, want [%d]", i, vals, i*10)
		}
	}
	if vals, _ := tr.Search(1000); len(vals) != 0 {
		t.Fatalf("Search(absent) = %v", vals)
	}
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pages still pinned", bp.PinnedPages())
	}
}

func TestBTreeSplitsGrowHeight(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	n := MaxLeafEntries*3 + 17
	for i := 0; i < n; i++ {
		if err := tr.Insert(int64(i), uint64(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	h, _ := tr.Height()
	if h < 2 {
		t.Fatalf("height = %d after %d inserts, want >= 2", h, n)
	}
	cnt, _ := tr.Len()
	if cnt != uint64(n) {
		t.Fatalf("Len = %d, want %d", cnt, n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

func TestBTreeDeepTreeWithSmallBranching(t *testing.T) {
	tr, _ := newTestTree(t, 1024)
	tr.setBranching(4)
	const n = 1000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(int64(i), uint64(i)+7); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	h, _ := tr.Height()
	if h < 4 {
		t.Fatalf("height = %d with branching 4 and %d keys, want deep tree", h, n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	for i := 0; i < n; i++ {
		vals, err := tr.Search(int64(i))
		if err != nil || len(vals) != 1 || vals[0] != uint64(i)+7 {
			t.Fatalf("Search(%d) = (%v, %v)", i, vals, err)
		}
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	tr.setBranching(4)
	// 50 values under each of 10 keys, inserted interleaved.
	for v := 0; v < 50; v++ {
		for k := 0; k < 10; k++ {
			if err := tr.Insert(int64(k), uint64(v*1000+k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	for k := 0; k < 10; k++ {
		vals, err := tr.Search(int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 50 {
			t.Fatalf("Search(%d) found %d values, want 50", k, len(vals))
		}
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
			t.Fatalf("Search(%d) values unsorted", k)
		}
		for i, v := range vals {
			if v != uint64(i*1000+k) {
				t.Fatalf("Search(%d)[%d] = %d, want %d", k, i, v, i*1000+k)
			}
		}
	}
}

func TestBTreeExactDuplicateEntries(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	tr.setBranching(4)
	// The same (key, value) pair many times: multiset semantics, and the
	// straddling-split edge case for identical composites.
	const copies = 100
	for i := 0; i < copies; i++ {
		if err := tr.Insert(7, 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	vals, err := tr.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != copies {
		t.Fatalf("Search found %d copies, want %d", len(vals), copies)
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	tr.setBranching(5)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(int64(i*2), uint64(i)); err != nil { // even keys only
			t.Fatal(err)
		}
	}
	var keys []int64
	err := tr.AscendRange(101, 201, func(k int64, v uint64) error {
		keys = append(keys, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Even keys in [101, 201]: 102..200 -> 50 keys.
	if len(keys) != 50 || keys[0] != 102 || keys[len(keys)-1] != 200 {
		t.Fatalf("AscendRange returned %d keys [%d..%d], want 50 [102..200]",
			len(keys), keys[0], keys[len(keys)-1])
	}
	// Empty and inverted ranges.
	count := 0
	tr.AscendRange(1001, 2000, func(int64, uint64) error { count++; return nil })
	if count != 0 {
		t.Fatalf("AscendRange past end visited %d", count)
	}
	tr.AscendRange(10, 5, func(int64, uint64) error { count++; return nil })
	if count != 0 {
		t.Fatalf("inverted AscendRange visited %d", count)
	}
}

func TestBTreeAscendEarlyStop(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i), uint64(i))
	}
	seen := 0
	err := tr.Ascend(func(k int64, v uint64) error {
		seen++
		if seen == 7 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || seen != 7 {
		t.Fatalf("early stop: seen=%d err=%v", seen, err)
	}
}

func TestBTreeNegativeKeys(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	keys := []int64{-1000, -1, 0, 1, 1000, -500}
	for i, k := range keys {
		if err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	tr.Ascend(func(k int64, v uint64) error {
		got = append(got, k)
		return nil
	})
	want := []int64{-1000, -500, -1, 0, 1, 1000}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v, want %v", got, want)
		}
	}
}

func TestBTreeSearchFirstAndContains(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	tr.Insert(5, 50)
	tr.Insert(5, 40)
	v, ok, err := tr.SearchFirst(5)
	if err != nil || !ok || v != 40 {
		t.Fatalf("SearchFirst = (%d, %v, %v), want 40", v, ok, err)
	}
	_, ok, err = tr.SearchFirst(6)
	if err != nil || ok {
		t.Fatalf("SearchFirst(absent) = (%v, %v)", ok, err)
	}
	for _, tc := range []struct {
		k    int64
		v    uint64
		want bool
	}{{5, 40, true}, {5, 50, true}, {5, 60, false}, {6, 40, false}} {
		got, err := tr.Contains(tc.k, tc.v)
		if err != nil || got != tc.want {
			t.Fatalf("Contains(%d,%d) = (%v, %v), want %v", tc.k, tc.v, got, err, tc.want)
		}
	}
}

func TestBTreeDelete(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	tr.setBranching(4)
	for i := 0; i < 200; i++ {
		tr.Insert(int64(i%20), uint64(i))
	}
	// Delete every value under key 3.
	vals, _ := tr.Search(3)
	for _, v := range vals {
		ok, err := tr.Delete(3, v)
		if err != nil || !ok {
			t.Fatalf("Delete(3, %d) = (%v, %v)", v, ok, err)
		}
	}
	if vals, _ := tr.Search(3); len(vals) != 0 {
		t.Fatalf("key 3 still has values %v after delete", vals)
	}
	if ok, _ := tr.Delete(3, 3); ok {
		t.Fatal("Delete of absent entry reported true")
	}
	n, _ := tr.Len()
	if n != 190 {
		t.Fatalf("Len after deletes = %d, want 190", n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after deletes: %v", err)
	}
}

func TestBTreeReopen(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMemDiskManager(), 256)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := tr.Insert(int64(i), uint64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	tr2 := Open(bp, tr.Root())
	n, err := tr2.Len()
	if err != nil || n != 10000 {
		t.Fatalf("reopened Len = (%d, %v)", n, err)
	}
	vals, err := tr2.Search(9999)
	if err != nil || len(vals) != 1 || vals[0] != 9999*3 {
		t.Fatalf("reopened Search = (%v, %v)", vals, err)
	}
}

// TestBTreeRandomizedAgainstReference drives the tree with random inserts
// and deletes, mirroring them in an in-memory reference, and checks
// lookups, ordered iteration, and invariants.
func TestBTreeRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr, bp := newTestTree(t, 2048)
	tr.setBranching(6)
	type entry struct {
		k int64
		v uint64
	}
	ref := make(map[entry]int)
	for op := 0; op < 5000; op++ {
		k := int64(rng.Intn(50) - 25)
		v := uint64(rng.Intn(40))
		if rng.Intn(3) > 0 { // 2/3 inserts
			if err := tr.Insert(k, v); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			ref[entry{k, v}]++
		} else {
			ok, err := tr.Delete(k, v)
			if err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if ok != (ref[entry{k, v}] > 0) {
				t.Fatalf("Delete(%d,%d) = %v, reference disagrees", k, v, ok)
			}
			if ok {
				ref[entry{k, v}]--
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	// Full ordered iteration must match the sorted reference multiset.
	var want []entry
	for e, c := range ref {
		for i := 0; i < c; i++ {
			want = append(want, e)
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].k != want[j].k {
			return want[i].k < want[j].k
		}
		return want[i].v < want[j].v
	})
	var got []entry
	tr.Ascend(func(k int64, v uint64) error {
		got = append(got, entry{k, v})
		return nil
	})
	if len(got) != len(want) {
		t.Fatalf("iteration found %d entries, reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pages still pinned", bp.PinnedPages())
	}
}

// Property: for random insert batches, Search(k) returns exactly the
// values inserted under k, sorted ascending.
func TestBTreeQuickSearchMatchesInserts(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		bp := storage.NewBufferPool(storage.NewMemDiskManager(), 512)
		tr, err := Create(bp)
		if err != nil {
			return false
		}
		tr.setBranching(5)
		n := int(nRaw)%800 + 1
		ref := map[int64][]uint64{}
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(30))
			v := uint64(rng.Intn(1 << 30))
			if err := tr.Insert(k, v); err != nil {
				return false
			}
			ref[k] = append(ref[k], v)
		}
		for k, want := range ref {
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got, err := tr.Search(k)
			if err != nil || len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeNumPages(t *testing.T) {
	tr, _ := newTestTree(t, 1024)
	tr.setBranching(4)
	empty, err := tr.NumPages()
	if err != nil || empty != 2 { // meta + root leaf
		t.Fatalf("empty NumPages = (%d, %v), want 2", empty, err)
	}
	for i := 0; i < 500; i++ {
		tr.Insert(int64(i), uint64(i))
	}
	n, err := tr.NumPages()
	if err != nil {
		t.Fatal(err)
	}
	// 500 entries at branching 4 need at least 125 leaves plus internals.
	if n < 125 {
		t.Fatalf("NumPages = %d after 500 inserts at branching 4", n)
	}
}

func TestBTreeLargeSequentialAndReverse(t *testing.T) {
	for _, dir := range []string{"asc", "desc"} {
		t.Run(dir, func(t *testing.T) {
			tr, _ := newTestTree(t, 4096)
			const n = 60000
			for i := 0; i < n; i++ {
				k := int64(i)
				if dir == "desc" {
					k = int64(n - i)
				}
				if err := tr.Insert(k, uint64(k)); err != nil {
					t.Fatal(err)
				}
			}
			cnt, _ := tr.Len()
			if cnt != n {
				t.Fatalf("Len = %d, want %d", cnt, n)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("CheckInvariants: %v", err)
			}
			prev := int64(-1)
			tr.Ascend(func(k int64, v uint64) error {
				if k <= prev {
					return fmt.Errorf("out of order: %d after %d", k, prev)
				}
				prev = k
				return nil
			})
		})
	}
}
