// Package btree implements a paged B+-tree over the buffer pool, mapping
// int64 keys to uint64 values with full duplicate-key support.
//
// The OLAP Array ADT stores one B-tree per dimension to map dimension key
// values to array index values (§3.1 of the paper), and the selection
// algorithm uses B-trees on dimension attributes to retrieve the index
// lists for selected values (§4.2).
//
// Entries are ordered by the composite (key, value), which makes every
// entry unique and lets duplicate keys span node boundaries without
// special cases: looking up a key is a range scan over [(key, 0),
// (key, MaxUint64)].
package btree

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/storage"
)

// nodeReads counts node (and meta) page fetches across every tree in the
// process — the work metric of B-tree probing, exported engine-wide as
// btree_node_reads_total. Package-scoped because trees are created deep
// inside the array and dimension structures where threading a registry
// through every constructor would obscure the algorithms.
var nodeReads atomic.Int64

// NodeReads reports the cumulative node page fetches.
func NodeReads() int64 { return nodeReads.Load() }

// Node page layout. Byte 0 holds the node type.
//
// Leaf:
//
//	[0:1)   type = leafNode
//	[1:3)   entry count
//	[3:11)  next leaf page id
//	[11:)   entries: key int64, value uint64 (16 bytes each)
//
// Internal:
//
//	[0:1)   type = internalNode
//	[1:3)   entry count n (the node has n+1 children)
//	[3:11)  child 0 page id
//	[11:)   entries: separator key int64, separator value uint64,
//	        child page id (24 bytes each); child i+1 holds entries
//	        >= separator i
//
// Meta page (the tree's stable identity):
//
//	[0:8)   root page id
//	[8:16)  total entry count
//	[16:24) tree height (1 = root is a leaf)
const (
	leafNode     = byte(1)
	internalNode = byte(2)

	nodeCountOff   = 1
	leafNextOff    = 3
	leafEntriesOff = 11
	leafEntrySize  = 16
	intChild0Off   = 3
	intEntriesOff  = 11
	intEntrySize   = 24

	// MaxLeafEntries and MaxInternalEntries are exported for tests that
	// want to force splits deterministically.
	MaxLeafEntries     = (storage.PageSize - leafEntriesOff) / leafEntrySize
	MaxInternalEntries = (storage.PageSize - intEntriesOff) / intEntrySize

	metaRootOff   = 0
	metaCountOff  = 8
	metaHeightOff = 16
)

// ErrStopScan stops a range scan early without error.
var ErrStopScan = errors.New("btree: stop scan")

// Tree is a B+-tree identified by its meta page.
type Tree struct {
	bp   *storage.BufferPool
	meta storage.PageID

	// branching overrides the physical fan-out for tests; 0 means use
	// the page capacity.
	branching int
}

// Create allocates an empty tree and returns it. Record Root() to reopen.
func Create(bp *storage.BufferPool) (*Tree, error) {
	rootID, rootBuf, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	rootBuf[0] = leafNode
	storage.PutUint16(rootBuf, nodeCountOff, 0)
	storage.PutUint64(rootBuf, leafNextOff, uint64(storage.InvalidPageID))
	if err := bp.Unpin(rootID, true); err != nil {
		return nil, err
	}

	metaID, metaBuf, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	storage.PutUint64(metaBuf, metaRootOff, uint64(rootID))
	storage.PutUint64(metaBuf, metaCountOff, 0)
	storage.PutUint64(metaBuf, metaHeightOff, 1)
	if err := bp.Unpin(metaID, true); err != nil {
		return nil, err
	}
	return &Tree{bp: bp, meta: metaID}, nil
}

// Open returns the tree rooted at the given meta page.
func Open(bp *storage.BufferPool, meta storage.PageID) *Tree {
	return &Tree{bp: bp, meta: meta}
}

// Root returns the meta page id identifying this tree.
func (t *Tree) Root() storage.PageID { return t.meta }

// fetchNode pins a node page for reading, counting the fetch.
func (t *Tree) fetchNode(id storage.PageID) ([]byte, error) {
	nodeReads.Add(1)
	return t.bp.FetchPage(id)
}

// setBranching caps the per-node entry count; test hook.
func (t *Tree) setBranching(n int) { t.branching = n }

func (t *Tree) maxLeaf() int {
	if t.branching > 0 && t.branching < MaxLeafEntries {
		return t.branching
	}
	return MaxLeafEntries
}

func (t *Tree) maxInternal() int {
	if t.branching > 0 && t.branching < MaxInternalEntries {
		return t.branching
	}
	return MaxInternalEntries
}

// Len reports the number of entries in the tree.
func (t *Tree) Len() (uint64, error) {
	buf, err := t.fetchNode(t.meta)
	if err != nil {
		return 0, err
	}
	n := storage.GetUint64(buf, metaCountOff)
	return n, t.bp.Unpin(t.meta, false)
}

// Height reports the tree height (1 when the root is a leaf).
func (t *Tree) Height() (int, error) {
	buf, err := t.fetchNode(t.meta)
	if err != nil {
		return 0, err
	}
	h := int(storage.GetUint64(buf, metaHeightOff))
	return h, t.bp.Unpin(t.meta, false)
}

// cmp orders composite entries.
func cmp(k1 int64, v1 uint64, k2 int64, v2 uint64) int {
	switch {
	case k1 < k2:
		return -1
	case k1 > k2:
		return 1
	case v1 < v2:
		return -1
	case v1 > v2:
		return 1
	default:
		return 0
	}
}

// Leaf entry accessors.
func leafKey(buf []byte, i int) int64 {
	return storage.GetInt64(buf, leafEntriesOff+i*leafEntrySize)
}
func leafVal(buf []byte, i int) uint64 {
	return storage.GetUint64(buf, leafEntriesOff+i*leafEntrySize+8)
}
func setLeafEntry(buf []byte, i int, k int64, v uint64) {
	storage.PutInt64(buf, leafEntriesOff+i*leafEntrySize, k)
	storage.PutUint64(buf, leafEntriesOff+i*leafEntrySize+8, v)
}

// Internal entry accessors.
func intKey(buf []byte, i int) int64 {
	return storage.GetInt64(buf, intEntriesOff+i*intEntrySize)
}
func intVal(buf []byte, i int) uint64 {
	return storage.GetUint64(buf, intEntriesOff+i*intEntrySize+8)
}
func intChild(buf []byte, i int) storage.PageID {
	if i == 0 {
		return storage.PageID(storage.GetUint64(buf, intChild0Off))
	}
	return storage.PageID(storage.GetUint64(buf, intEntriesOff+(i-1)*intEntrySize+16))
}
func setIntEntry(buf []byte, i int, k int64, v uint64, child storage.PageID) {
	storage.PutInt64(buf, intEntriesOff+i*intEntrySize, k)
	storage.PutUint64(buf, intEntriesOff+i*intEntrySize+8, v)
	storage.PutUint64(buf, intEntriesOff+i*intEntrySize+16, uint64(child))
}

func nodeCount(buf []byte) int       { return int(storage.GetUint16(buf, nodeCountOff)) }
func setNodeCount(buf []byte, n int) { storage.PutUint16(buf, nodeCountOff, uint16(n)) }
func leafNext(buf []byte) storage.PageID {
	return storage.PageID(storage.GetUint64(buf, leafNextOff))
}

// leafLowerBound returns the first index i with entry(i) >= (k, v).
func leafLowerBound(buf []byte, k int64, v uint64) int {
	lo, hi := 0, nodeCount(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(leafKey(buf, mid), leafVal(buf, mid), k, v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intChildForInsert returns the child slot for inserting (k, v): the slot
// left of the first separator strictly greater than (k, v), so entries
// equal to a separator go right. This maintains the invariant that child
// i+1 holds entries >= separator i.
func intChildForInsert(buf []byte, k int64, v uint64) int {
	lo, hi := 0, nodeCount(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(intKey(buf, mid), intVal(buf, mid), k, v) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intChildForSeek returns the child slot for finding the leftmost entry
// >= (k, v): the slot left of the first separator >= (k, v). When exact
// duplicates of a separator straddle a split, the left sibling may hold
// copies, so seeks descend left of an equal separator; forward leaf-chain
// scans then cover the right side too.
func intChildForSeek(buf []byte, k int64, v uint64) int {
	lo, hi := 0, nodeCount(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(intKey(buf, mid), intVal(buf, mid), k, v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// promotion is the result of a child split: sep is the first entry of the
// new right node, which becomes a separator in the parent.
type promotion struct {
	key   int64
	val   uint64
	right storage.PageID
}

// Insert adds the (key, value) entry. Duplicate (key, value) pairs are
// stored once per Insert call — the tree is a multiset.
func (t *Tree) Insert(key int64, value uint64) error {
	metaBuf, err := t.fetchNode(t.meta)
	if err != nil {
		return err
	}
	root := storage.PageID(storage.GetUint64(metaBuf, metaRootOff))
	count := storage.GetUint64(metaBuf, metaCountOff)
	height := storage.GetUint64(metaBuf, metaHeightOff)
	if err := t.bp.Unpin(t.meta, false); err != nil {
		return err
	}

	promo, err := t.insertInto(root, key, value)
	if err != nil {
		return err
	}

	metaBuf, err = t.bp.FetchPageForWrite(t.meta)
	if err != nil {
		return err
	}
	storage.PutUint64(metaBuf, metaCountOff, count+1)
	if promo != nil {
		// Grow a new root.
		newRootID, rootBuf, err := t.bp.NewPage()
		if err != nil {
			t.bp.Unpin(t.meta, true)
			return err
		}
		rootBuf[0] = internalNode
		setNodeCount(rootBuf, 1)
		storage.PutUint64(rootBuf, intChild0Off, uint64(root))
		setIntEntry(rootBuf, 0, promo.key, promo.val, promo.right)
		if err := t.bp.Unpin(newRootID, true); err != nil {
			t.bp.Unpin(t.meta, true)
			return err
		}
		storage.PutUint64(metaBuf, metaRootOff, uint64(newRootID))
		storage.PutUint64(metaBuf, metaHeightOff, height+1)
	}
	return t.bp.Unpin(t.meta, true)
}

// insertInto descends from node, inserting the entry; it returns a
// non-nil promotion if node split.
func (t *Tree) insertInto(node storage.PageID, key int64, value uint64) (*promotion, error) {
	buf, err := t.bp.FetchPageForWrite(node)
	if err != nil {
		return nil, err
	}
	if buf[0] == leafNode {
		return t.insertLeaf(node, buf, key, value)
	}

	slot := intChildForInsert(buf, key, value)
	child := intChild(buf, slot)
	if err := t.bp.Unpin(node, false); err != nil {
		return nil, err
	}
	promo, err := t.insertInto(child, key, value)
	if err != nil || promo == nil {
		return nil, err
	}

	// Insert the promoted separator into this internal node, immediately
	// right of the child that split. The slot from the descent is reused
	// rather than recomputed by value: with duplicate composites a value
	// search could land beside a different, equal separator and attach
	// promo.right to the wrong position. Trees are single-writer, so the
	// slot is still valid after the child insert returns.
	buf, err = t.bp.FetchPageForWrite(node)
	if err != nil {
		return nil, err
	}
	n := nodeCount(buf)
	if n < t.maxInternal() {
		// Shift entries right and place the separator at slot.
		copy(buf[intEntriesOff+(slot+1)*intEntrySize:intEntriesOff+(n+1)*intEntrySize],
			buf[intEntriesOff+slot*intEntrySize:intEntriesOff+n*intEntrySize])
		setIntEntry(buf, slot, promo.key, promo.val, promo.right)
		setNodeCount(buf, n+1)
		return nil, t.bp.Unpin(node, true)
	}

	// Split this internal node. Gather n+1 separators and n+2 children.
	type sep struct {
		k int64
		v uint64
		c storage.PageID
	}
	seps := make([]sep, 0, n+1)
	for i := 0; i < n; i++ {
		seps = append(seps, sep{intKey(buf, i), intVal(buf, i), intChild(buf, i+1)})
	}
	seps = append(seps, sep{})
	copy(seps[slot+1:], seps[slot:])
	seps[slot] = sep{promo.key, promo.val, promo.right}
	child0 := intChild(buf, 0)

	mid := len(seps) / 2
	upKey, upVal := seps[mid].k, seps[mid].v
	rightChild0 := seps[mid].c

	// Left node keeps seps[:mid], right node takes seps[mid+1:].
	setNodeCount(buf, mid)
	storage.PutUint64(buf, intChild0Off, uint64(child0))
	for i := 0; i < mid; i++ {
		setIntEntry(buf, i, seps[i].k, seps[i].v, seps[i].c)
	}
	if err := t.bp.Unpin(node, true); err != nil {
		return nil, err
	}

	rightID, rbuf, err := t.bp.NewPage()
	if err != nil {
		return nil, err
	}
	rbuf[0] = internalNode
	rs := seps[mid+1:]
	setNodeCount(rbuf, len(rs))
	storage.PutUint64(rbuf, intChild0Off, uint64(rightChild0))
	for i, s := range rs {
		setIntEntry(rbuf, i, s.k, s.v, s.c)
	}
	if err := t.bp.Unpin(rightID, true); err != nil {
		return nil, err
	}
	return &promotion{key: upKey, val: upVal, right: rightID}, nil
}

// insertLeaf inserts into a pinned leaf; buf is the pinned page, which is
// always unpinned before return.
func (t *Tree) insertLeaf(node storage.PageID, buf []byte, key int64, value uint64) (*promotion, error) {
	n := nodeCount(buf)
	pos := leafLowerBound(buf, key, value)
	if n < t.maxLeaf() {
		copy(buf[leafEntriesOff+(pos+1)*leafEntrySize:leafEntriesOff+(n+1)*leafEntrySize],
			buf[leafEntriesOff+pos*leafEntrySize:leafEntriesOff+n*leafEntrySize])
		setLeafEntry(buf, pos, key, value)
		setNodeCount(buf, n+1)
		return nil, t.bp.Unpin(node, true)
	}

	// Split the leaf: left keeps ceil((n+1)/2) of the n+1 entries.
	type ent struct {
		k int64
		v uint64
	}
	ents := make([]ent, 0, n+1)
	for i := 0; i < n; i++ {
		ents = append(ents, ent{leafKey(buf, i), leafVal(buf, i)})
	}
	ents = append(ents, ent{})
	copy(ents[pos+1:], ents[pos:])
	ents[pos] = ent{key, value}

	mid := (len(ents) + 1) / 2
	next := leafNext(buf)

	rightID, rbuf, err := t.bp.NewPage()
	if err != nil {
		t.bp.Unpin(node, false)
		return nil, err
	}
	rbuf[0] = leafNode
	rs := ents[mid:]
	setNodeCount(rbuf, len(rs))
	storage.PutUint64(rbuf, leafNextOff, uint64(next))
	for i, e := range rs {
		setLeafEntry(rbuf, i, e.k, e.v)
	}
	if err := t.bp.Unpin(rightID, true); err != nil {
		t.bp.Unpin(node, false)
		return nil, err
	}

	setNodeCount(buf, mid)
	for i := 0; i < mid; i++ {
		setLeafEntry(buf, i, ents[i].k, ents[i].v)
	}
	storage.PutUint64(buf, leafNextOff, uint64(rightID))
	if err := t.bp.Unpin(node, true); err != nil {
		return nil, err
	}
	return &promotion{key: rs[0].k, val: rs[0].v, right: rightID}, nil
}

// descendToLeaf returns the leaf page that would contain (k, v).
func (t *Tree) descendToLeaf(k int64, v uint64) (storage.PageID, error) {
	metaBuf, err := t.fetchNode(t.meta)
	if err != nil {
		return storage.InvalidPageID, err
	}
	node := storage.PageID(storage.GetUint64(metaBuf, metaRootOff))
	if err := t.bp.Unpin(t.meta, false); err != nil {
		return storage.InvalidPageID, err
	}
	for {
		buf, err := t.fetchNode(node)
		if err != nil {
			return storage.InvalidPageID, err
		}
		if buf[0] == leafNode {
			if err := t.bp.Unpin(node, false); err != nil {
				return storage.InvalidPageID, err
			}
			return node, nil
		}
		child := intChild(buf, intChildForSeek(buf, k, v))
		if err := t.bp.Unpin(node, false); err != nil {
			return storage.InvalidPageID, err
		}
		node = child
	}
}

// SearchEach invokes fn for every value stored under key, in ascending
// value order.
func (t *Tree) SearchEach(key int64, fn func(value uint64) error) error {
	return t.AscendRange(key, key, func(_ int64, v uint64) error { return fn(v) })
}

// Search returns all values stored under key, in ascending order.
func (t *Tree) Search(key int64) ([]uint64, error) {
	var out []uint64
	err := t.SearchEach(key, func(v uint64) error {
		out = append(out, v)
		return nil
	})
	return out, err
}

// SearchFirst returns the smallest value under key; ok is false when the
// key is absent.
func (t *Tree) SearchFirst(key int64) (uint64, bool, error) {
	var val uint64
	found := false
	err := t.SearchEach(key, func(v uint64) error {
		val = v
		found = true
		return ErrStopScan
	})
	if err != nil && !errors.Is(err, ErrStopScan) {
		return 0, false, err
	}
	return val, found, nil
}

// findEntry locates the leftmost leaf slot holding exactly (key, value).
// The seek descent lands left of an equal separator, so the walk may need
// to follow the leaf chain forward past empty-of-target leaves.
func (t *Tree) findEntry(key int64, value uint64) (storage.PageID, int, bool, error) {
	node, err := t.descendToLeaf(key, value)
	if err != nil {
		return storage.InvalidPageID, 0, false, err
	}
	for node.Valid() {
		buf, err := t.fetchNode(node)
		if err != nil {
			return storage.InvalidPageID, 0, false, err
		}
		n := nodeCount(buf)
		i := leafLowerBound(buf, key, value)
		if i < n {
			found := leafKey(buf, i) == key && leafVal(buf, i) == value
			if err := t.bp.Unpin(node, false); err != nil {
				return storage.InvalidPageID, 0, false, err
			}
			return node, i, found, nil
		}
		next := leafNext(buf)
		if err := t.bp.Unpin(node, false); err != nil {
			return storage.InvalidPageID, 0, false, err
		}
		node = next
	}
	return storage.InvalidPageID, 0, false, nil
}

// Contains reports whether the exact (key, value) entry is present.
func (t *Tree) Contains(key int64, value uint64) (bool, error) {
	_, _, found, err := t.findEntry(key, value)
	return found, err
}

// AscendRange invokes fn for every entry with loKey <= key <= hiKey in
// (key, value) order. Return ErrStopScan from fn to stop early.
func (t *Tree) AscendRange(loKey, hiKey int64, fn func(key int64, value uint64) error) error {
	if loKey > hiKey {
		return nil
	}
	node, err := t.descendToLeaf(loKey, 0)
	if err != nil {
		return err
	}
	for node.Valid() {
		buf, err := t.fetchNode(node)
		if err != nil {
			return err
		}
		n := nodeCount(buf)
		i := leafLowerBound(buf, loKey, 0)
		for ; i < n; i++ {
			k := leafKey(buf, i)
			if k > hiKey {
				return t.bp.Unpin(node, false)
			}
			if err := fn(k, leafVal(buf, i)); err != nil {
				t.bp.Unpin(node, false)
				if errors.Is(err, ErrStopScan) {
					return nil
				}
				return err
			}
		}
		next := leafNext(buf)
		if err := t.bp.Unpin(node, false); err != nil {
			return err
		}
		node = next
	}
	return nil
}

// Ascend invokes fn for every entry in the tree in (key, value) order.
func (t *Tree) Ascend(fn func(key int64, value uint64) error) error {
	min, max := int64(-1<<63), int64(1<<63-1)
	return t.AscendRange(min, max, fn)
}

// Delete removes one occurrence of the exact (key, value) entry. It
// reports whether an entry was removed. Nodes are not rebalanced (the
// engine's indices are bulk-built and rarely shrink), so space from
// deletions is reused only by later inserts into the same leaf.
func (t *Tree) Delete(key int64, value uint64) (bool, error) {
	leaf, i, found, err := t.findEntry(key, value)
	if err != nil || !found {
		return false, err
	}
	buf, err := t.bp.FetchPageForWrite(leaf)
	if err != nil {
		return false, err
	}
	n := nodeCount(buf)
	// Re-verify under the pin; findEntry released the page.
	if i >= n || leafKey(buf, i) != key || leafVal(buf, i) != value {
		return false, t.bp.Unpin(leaf, false)
	}
	copy(buf[leafEntriesOff+i*leafEntrySize:leafEntriesOff+(n-1)*leafEntrySize],
		buf[leafEntriesOff+(i+1)*leafEntrySize:leafEntriesOff+n*leafEntrySize])
	setNodeCount(buf, n-1)
	if err := t.bp.Unpin(leaf, true); err != nil {
		return false, err
	}
	metaBuf, err := t.bp.FetchPageForWrite(t.meta)
	if err != nil {
		return false, err
	}
	storage.PutUint64(metaBuf, metaCountOff, storage.GetUint64(metaBuf, metaCountOff)-1)
	return true, t.bp.Unpin(t.meta, true)
}

// NumPages counts the pages the tree occupies (meta + all nodes) by
// walking it; used for storage accounting, not on hot paths.
func (t *Tree) NumPages() (int64, error) {
	metaBuf, err := t.fetchNode(t.meta)
	if err != nil {
		return 0, err
	}
	root := storage.PageID(storage.GetUint64(metaBuf, metaRootOff))
	if err := t.bp.Unpin(t.meta, false); err != nil {
		return 0, err
	}
	n, err := t.countNodes(root)
	return n + 1, err
}

func (t *Tree) countNodes(node storage.PageID) (int64, error) {
	buf, err := t.fetchNode(node)
	if err != nil {
		return 0, err
	}
	if buf[0] == leafNode {
		return 1, t.bp.Unpin(node, false)
	}
	n := nodeCount(buf)
	children := make([]storage.PageID, 0, n+1)
	for i := 0; i <= n; i++ {
		children = append(children, intChild(buf, i))
	}
	if err := t.bp.Unpin(node, false); err != nil {
		return 0, err
	}
	total := int64(1)
	for _, c := range children {
		sub, err := t.countNodes(c)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

// CheckInvariants walks the whole tree verifying structural invariants:
// entry ordering within and across leaves, separator consistency, and
// meta entry count. Tests call it after randomized workloads.
func (t *Tree) CheckInvariants() error {
	metaBuf, err := t.fetchNode(t.meta)
	if err != nil {
		return err
	}
	root := storage.PageID(storage.GetUint64(metaBuf, metaRootOff))
	wantCount := storage.GetUint64(metaBuf, metaCountOff)
	if err := t.bp.Unpin(t.meta, false); err != nil {
		return err
	}
	minK, minV := int64(-1<<63), uint64(0)
	maxK, maxV := int64(1<<63-1), uint64(1<<64-1)
	if _, err := t.checkNode(root, minK, minV, true, maxK, maxV, true); err != nil {
		return err
	}
	var got uint64
	var lastK int64
	var lastV uint64
	first := true
	err = t.Ascend(func(k int64, v uint64) error {
		if !first && cmp(lastK, lastV, k, v) > 0 {
			return fmt.Errorf("btree: leaf chain out of order: (%d,%d) after (%d,%d)", k, v, lastK, lastV)
		}
		first = false
		lastK, lastV = k, v
		got++
		return nil
	})
	if err != nil {
		return err
	}
	if got != wantCount {
		return fmt.Errorf("btree: meta count %d but %d entries reachable", wantCount, got)
	}
	return nil
}

// checkNode verifies that all entries in the subtree fall inside the
// bound [lo, hi) — hi inclusive only on the rightmost path (hiInc).
// Returns the subtree height.
func (t *Tree) checkNode(node storage.PageID, loK int64, loV uint64, loInc bool, hiK int64, hiV uint64, hiInc bool) (int, error) {
	buf, err := t.fetchNode(node)
	if err != nil {
		return 0, err
	}
	typ := buf[0]
	n := nodeCount(buf)
	if typ == leafNode {
		for i := 0; i < n; i++ {
			k, v := leafKey(buf, i), leafVal(buf, i)
			if i > 0 && cmp(leafKey(buf, i-1), leafVal(buf, i-1), k, v) > 0 {
				t.bp.Unpin(node, false)
				return 0, fmt.Errorf("btree: leaf %v out of order at %d", node, i)
			}
			if c := cmp(k, v, loK, loV); c < 0 || (c == 0 && !loInc) {
				t.bp.Unpin(node, false)
				return 0, fmt.Errorf("btree: leaf %v entry (%d,%d) below bound (%d,%d)", node, k, v, loK, loV)
			}
			if c := cmp(k, v, hiK, hiV); c > 0 || (c == 0 && !hiInc) {
				t.bp.Unpin(node, false)
				return 0, fmt.Errorf("btree: leaf %v entry (%d,%d) above bound (%d,%d)", node, k, v, hiK, hiV)
			}
		}
		return 1, t.bp.Unpin(node, false)
	}
	type sep struct {
		k int64
		v uint64
		c storage.PageID
	}
	seps := make([]sep, n)
	for i := 0; i < n; i++ {
		seps[i] = sep{intKey(buf, i), intVal(buf, i), intChild(buf, i+1)}
	}
	child0 := intChild(buf, 0)
	if err := t.bp.Unpin(node, false); err != nil {
		return 0, err
	}
	height := -1
	checkChild := func(c storage.PageID, lk int64, lv uint64, linc bool, hk int64, hv uint64, hinc bool) error {
		h, err := t.checkNode(c, lk, lv, linc, hk, hv, hinc)
		if err != nil {
			return err
		}
		if height == -1 {
			height = h
		} else if height != h {
			return fmt.Errorf("btree: uneven child heights under %v", node)
		}
		return nil
	}
	for i := 0; i <= n; i++ {
		lk, lv, linc := loK, loV, loInc
		hk, hv, hinc := hiK, hiV, hiInc
		if i > 0 {
			lk, lv, linc = seps[i-1].k, seps[i-1].v, true
		}
		if i < n {
			// Exact duplicates straddling a split leave copies equal to
			// the separator in the left child, so the upper bound stays
			// inclusive.
			hk, hv, hinc = seps[i].k, seps[i].v, true
		}
		c := child0
		if i > 0 {
			c = seps[i-1].c
		}
		if err := checkChild(c, lk, lv, linc, hk, hv, hinc); err != nil {
			return 0, err
		}
	}
	return height + 1, nil
}
