package storage

import (
	"path/filepath"
	"testing"
)

func TestSuperblockInitAndRoots(t *testing.T) {
	bp := newTestPool(4)
	sb, err := OpenSuperblock(bp)
	if err != nil {
		t.Fatalf("OpenSuperblock: %v", err)
	}
	if _, ok, err := sb.GetRoot("catalog"); err != nil || ok {
		t.Fatalf("GetRoot on empty = (%v, %v), want absent", ok, err)
	}
	if err := sb.SetRoot("catalog", 42); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	if err := sb.SetRoot("fact", 99); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	v, ok, err := sb.GetRoot("catalog")
	if err != nil || !ok || v != 42 {
		t.Fatalf("GetRoot(catalog) = (%d, %v, %v), want 42", v, ok, err)
	}
	// Update in place.
	if err := sb.SetRoot("catalog", 43); err != nil {
		t.Fatalf("SetRoot update: %v", err)
	}
	v, _, _ = sb.GetRoot("catalog")
	if v != 43 {
		t.Fatalf("updated root = %d, want 43", v)
	}
	names, err := sb.Roots()
	if err != nil {
		t.Fatalf("Roots: %v", err)
	}
	if len(names) != 2 || names[0] != "catalog" || names[1] != "fact" {
		t.Fatalf("Roots = %v", names)
	}
}

func TestSuperblockPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.db")
	d, err := OpenFileDiskManager(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	bp := NewBufferPool(d, 8)
	sb, err := OpenSuperblock(bp)
	if err != nil {
		t.Fatalf("OpenSuperblock: %v", err)
	}
	if err := sb.SetRoot("array:sales", 777); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	d.Close()

	d2, err := OpenFileDiskManager(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	bp2 := NewBufferPool(d2, 8)
	sb2, err := OpenSuperblock(bp2)
	if err != nil {
		t.Fatalf("OpenSuperblock after reopen: %v", err)
	}
	v, ok, err := sb2.GetRoot("array:sales")
	if err != nil || !ok || v != 777 {
		t.Fatalf("GetRoot after reopen = (%d, %v, %v), want 777", v, ok, err)
	}
}

func TestSuperblockRejectsGarbage(t *testing.T) {
	d := NewMemDiskManager()
	if _, err := d.Allocate(1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "JUNK")
	if err := d.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(d, 4)
	if _, err := OpenSuperblock(bp); err == nil {
		t.Fatal("OpenSuperblock accepted a corrupt header")
	}
}

func TestSuperblockNameTooLong(t *testing.T) {
	bp := newTestPool(4)
	sb, err := OpenSuperblock(bp)
	if err != nil {
		t.Fatal(err)
	}
	long := string(make([]byte, superNameLen+1))
	if err := sb.SetRoot(long, 1); err == nil {
		t.Fatal("SetRoot with oversized name succeeded")
	}
	if _, _, err := sb.GetRoot(long); err == nil {
		t.Fatal("GetRoot with oversized name succeeded")
	}
}
