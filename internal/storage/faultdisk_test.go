package storage

import (
	"errors"
	"sync"
	"testing"
)

// faultDisk wraps a DiskManager and fails operations once a countdown
// expires, for error-propagation testing.
type faultDisk struct {
	mu        sync.Mutex
	inner     DiskManager
	failAfter int // ops until failure; -1 = never
	err       error
}

var errInjected = errors.New("injected disk fault")

func newFaultDisk(inner DiskManager, failAfter int) *faultDisk {
	return &faultDisk{inner: inner, failAfter: failAfter, err: errInjected}
}

func (d *faultDisk) tick() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failAfter < 0 {
		return nil
	}
	if d.failAfter == 0 {
		return d.err
	}
	d.failAfter--
	return nil
}

func (d *faultDisk) ReadPage(id PageID, buf []byte) error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.inner.ReadPage(id, buf)
}

func (d *faultDisk) WritePage(id PageID, buf []byte) error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.inner.WritePage(id, buf)
}

func (d *faultDisk) Allocate(n int) (PageID, error) {
	if err := d.tick(); err != nil {
		return InvalidPageID, err
	}
	return d.inner.Allocate(n)
}

func (d *faultDisk) NumPages() uint64 { return d.inner.NumPages() }
func (d *faultDisk) Sync() error      { return d.inner.Sync() }
func (d *faultDisk) Close() error     { return d.inner.Close() }

// TestBufferPoolSurfacesDiskFaults drives the pool until the injected
// fault fires on every path: fetch, eviction write-back, allocation.
func TestBufferPoolSurfacesDiskFaults(t *testing.T) {
	// Fetch failure.
	fd := newFaultDisk(NewMemDiskManager(), -1)
	bp := NewBufferPool(fd, 2)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	fd.mu.Lock()
	fd.failAfter = 0
	fd.mu.Unlock()
	if _, err := bp.FetchPage(id); !errors.Is(err, errInjected) {
		t.Fatalf("FetchPage fault = %v", err)
	}
	fd.mu.Lock()
	fd.failAfter = -1
	fd.mu.Unlock()

	// Eviction write-back failure: fill both frames dirty, then make
	// the next write fail while bringing in a third page.
	a, _, _ := bp.NewPage()
	bp.Unpin(a, true)
	b, _, _ := bp.NewPage()
	bp.Unpin(b, true)
	fd.mu.Lock()
	fd.failAfter = 1 // allocation of the third page succeeds, write-back fails
	fd.mu.Unlock()
	if _, _, err := bp.NewPage(); !errors.Is(err, errInjected) {
		t.Fatalf("eviction fault = %v", err)
	}
	fd.mu.Lock()
	fd.failAfter = -1
	fd.mu.Unlock()

	// FlushAll failure.
	fd.mu.Lock()
	fd.failAfter = 0
	fd.mu.Unlock()
	if err := bp.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll fault = %v", err)
	}
}

// TestLOBSurfacesDiskFaults checks blob read/write error propagation.
func TestLOBSurfacesDiskFaults(t *testing.T) {
	fd := newFaultDisk(NewMemDiskManager(), -1)
	bp := NewBufferPool(fd, 4)
	s := NewLOBStore(bp)
	data := make([]byte, 3*PageSize)
	ref, _, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	fd.mu.Lock()
	fd.failAfter = 2
	fd.mu.Unlock()
	if _, err := s.Read(ref); !errors.Is(err, errInjected) {
		t.Fatalf("blob read fault = %v", err)
	}
	fd.mu.Lock()
	fd.failAfter = 0
	fd.mu.Unlock()
	if _, _, err := s.Write(data); !errors.Is(err, errInjected) {
		t.Fatalf("blob write fault = %v", err)
	}
}

// failLogger injects WAL failures.
type failLogger struct{ fail bool }

func (l *failLogger) LogPageImage(PageID, []byte) error {
	if l.fail {
		return errInjected
	}
	return nil
}

func (l *failLogger) LogBeforeImage(PageID, []byte) error {
	if l.fail {
		return errInjected
	}
	return nil
}

// TestWriteAheadFailureBlocksVolumeWrite: if the logger fails, the dirty
// page must NOT reach the volume.
func TestWriteAheadFailureBlocksVolumeWrite(t *testing.T) {
	disk := NewMemDiskManager()
	bp := NewBufferPool(disk, 4)
	lg := &failLogger{}
	bp.SetPageLogger(lg)

	id, buf, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 0xAB
	bp.Unpin(id, true)

	lg.fail = true
	if err := bp.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll with failing logger = %v", err)
	}
	raw := make([]byte, PageSize)
	if err := disk.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] == 0xAB {
		t.Fatal("page reached the volume despite write-ahead failure")
	}

	lg.fail = false
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	disk.ReadPage(id, raw)
	if raw[0] != 0xAB {
		t.Fatal("page lost after logger recovered")
	}
}

// TestFetchPageForWriteLoggerFailure: a failing before-image logger must
// abort the write fetch.
func TestFetchPageForWriteLoggerFailure(t *testing.T) {
	disk := NewMemDiskManager()
	bp := NewBufferPool(disk, 4)
	lg := &failLogger{}
	bp.SetPageLogger(lg)

	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}

	lg.fail = true
	if _, err := bp.FetchPageForWrite(id); !errors.Is(err, errInjected) {
		t.Fatalf("FetchPageForWrite with failing logger = %v", err)
	}
	lg.fail = false
	got, err := bp.FetchPageForWrite(id)
	if err != nil {
		t.Fatalf("FetchPageForWrite after recovery: %v", err)
	}
	_ = got
	bp.Unpin(id, false)
}
