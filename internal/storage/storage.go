// Package storage implements the paged storage substrate that the rest of
// the engine is built on: a disk manager abstraction, a fixed-size buffer
// pool with LRU replacement and pin/unpin accounting, an extent allocator
// for contiguous page runs, and a large-object (blob) store used for array
// chunks and serialized metadata.
//
// It plays the role that the SHORE storage manager played for Paradise in
// the paper: everything above it (heap files, fact files, B+-trees, bitmap
// indices, chunked arrays) sees only pages and blobs.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// PageSize is the size of every page in the database in bytes.
	PageSize = 8192

	// InvalidPageID marks the absence of a page reference.
	InvalidPageID = PageID(0xFFFFFFFFFFFFFFFF)

	// HeaderPageID is the page that holds the database superblock.
	HeaderPageID = PageID(0)
)

// PageID identifies a page within the database file. Page 0 is the
// superblock; data pages start at 1.
type PageID uint64

// String implements fmt.Stringer.
func (p PageID) String() string {
	if p == InvalidPageID {
		return "page(<invalid>)"
	}
	return fmt.Sprintf("page(%d)", uint64(p))
}

// Valid reports whether p refers to a real page.
func (p PageID) Valid() bool { return p != InvalidPageID }

var (
	// ErrPageNotAllocated is returned when a read refers past the end of
	// the database file.
	ErrPageNotAllocated = errors.New("storage: page not allocated")

	// ErrBufferPoolFull is returned when every frame in the pool is
	// pinned and a new page must be brought in.
	ErrBufferPoolFull = errors.New("storage: all buffer pool frames pinned")

	// ErrShortPage is returned when a page payload has an unexpected size.
	ErrShortPage = errors.New("storage: short page")
)

// byteOrder is the on-disk integer encoding used throughout the engine.
var byteOrder = binary.LittleEndian

// PutUint16 writes v into b at off using the engine byte order.
func PutUint16(b []byte, off int, v uint16) { byteOrder.PutUint16(b[off:off+2], v) }

// GetUint16 reads a uint16 from b at off.
func GetUint16(b []byte, off int) uint16 { return byteOrder.Uint16(b[off : off+2]) }

// PutUint32 writes v into b at off.
func PutUint32(b []byte, off int, v uint32) { byteOrder.PutUint32(b[off:off+4], v) }

// GetUint32 reads a uint32 from b at off.
func GetUint32(b []byte, off int) uint32 { return byteOrder.Uint32(b[off : off+4]) }

// PutUint64 writes v into b at off.
func PutUint64(b []byte, off int, v uint64) { byteOrder.PutUint64(b[off:off+8], v) }

// GetUint64 reads a uint64 from b at off.
func GetUint64(b []byte, off int) uint64 { return byteOrder.Uint64(b[off : off+8]) }

// PutInt64 writes v into b at off.
func PutInt64(b []byte, off int, v int64) { byteOrder.PutUint64(b[off:off+8], uint64(v)) }

// GetInt64 reads an int64 from b at off.
func GetInt64(b []byte, off int) int64 { return int64(byteOrder.Uint64(b[off : off+8])) }
