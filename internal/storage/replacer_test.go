package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newPolicyPool(t testing.TB, frames int, policy string) *BufferPool {
	t.Helper()
	bp, err := NewBufferPoolPolicy(NewMemDiskManager(), frames, policy)
	if err != nil {
		t.Fatalf("NewBufferPoolPolicy(%q): %v", policy, err)
	}
	return bp
}

var allReplacers = []string{ReplacerLRU, ReplacerClock, Replacer2Q}

func TestReplacerSelection(t *testing.T) {
	for _, name := range allReplacers {
		bp := newPolicyPool(t, 4, name)
		if bp.ReplacerName() != name {
			t.Fatalf("ReplacerName() = %q, want %q", bp.ReplacerName(), name)
		}
	}
	if bp := newPolicyPool(t, 4, ""); bp.ReplacerName() != ReplacerLRU {
		t.Fatalf("empty policy selected %q, want lru default", bp.ReplacerName())
	}
	if _, err := NewBufferPoolPolicy(NewMemDiskManager(), 4, "mru"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// replacerSim drives a Replacer directly with a page-access trace,
// modelling what the pool does: resident pages are Pin/Unpinned, misses
// ask Victim for a frame. It counts how often each page missed.
type replacerSim struct {
	rep      Replacer
	frames   int
	pageAt   []PageID       // frame -> resident page (0 = empty)
	frameFor map[PageID]int // page -> frame
	free     []int
	misses   map[PageID]int
}

func newReplacerSim(t testing.TB, name string, frames int) *replacerSim {
	t.Helper()
	rep, err := NewReplacer(name, frames)
	if err != nil {
		t.Fatal(err)
	}
	s := &replacerSim{
		rep:      rep,
		frames:   frames,
		pageAt:   make([]PageID, frames),
		frameFor: map[PageID]int{},
		misses:   map[PageID]int{},
	}
	for i := frames - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// access touches one page: hit -> Pin+Unpin, miss -> Victim (or a free
// frame), load, Unpin.
func (s *replacerSim) access(t testing.TB, id PageID) {
	t.Helper()
	if idx, ok := s.frameFor[id]; ok {
		s.rep.Pin(idx)
		s.rep.Unpin(idx, id)
		return
	}
	s.misses[id]++
	var idx int
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		idx = s.rep.Victim()
		if idx < 0 {
			t.Fatalf("%s: no victim with all frames unpinned", s.rep.Name())
		}
		delete(s.frameFor, s.pageAt[idx])
	}
	s.pageAt[idx] = id
	s.frameFor[id] = idx
	s.rep.Unpin(idx, id)
}

// TestReplacerScanResistance is the differential 2Q exists for: a long
// sequential sweep with a small hot set re-touched every `gap` accesses.
// The gap exceeds what LRU can tolerate (more than frames-hotN distinct
// pages between touches evicts the hot set every interval), so LRU keeps
// re-faulting the hot pages; 2Q promotes them to the main queue and
// never evicts them while the sweep churns A1in. Clock is an LRU
// approximation, not a scan-resistant policy — the assertion for it is
// only that it does no worse than LRU on this trace while granting
// second chances (its win is O(1) bookkeeping, not the sweep).
func TestReplacerScanResistance(t *testing.T) {
	const (
		frames  = 8
		hotN    = 2
		gap     = 8 // distinct scan pages between hot re-touches; > frames-hotN
		sweep   = 200
		scanLo  = PageID(1000)
		rounds  = sweep / gap
		hotBase = PageID(1)
	)
	missesFor := func(name string) (hotMisses int, saves uint64) {
		sim := newReplacerSim(t, name, frames)
		// Establish the hot set: touch twice so 2Q sees a re-reference
		// while resident and promotes on the second unpin.
		for pass := 0; pass < 2; pass++ {
			for h := 0; h < hotN; h++ {
				sim.access(t, hotBase+PageID(h))
			}
		}
		next := scanLo
		for r := 0; r < rounds; r++ {
			for i := 0; i < gap; i++ {
				sim.access(t, next)
				next++
			}
			for h := 0; h < hotN; h++ {
				sim.access(t, hotBase+PageID(h))
			}
		}
		for h := 0; h < hotN; h++ {
			hotMisses += sim.misses[hotBase+PageID(h)] - 1 // first touch is a cold miss
		}
		return hotMisses, sim.rep.Saves()
	}

	lru, _ := missesFor(ReplacerLRU)
	clock, clockSaves := missesFor(ReplacerClock)
	twoQ, twoQSaves := missesFor(Replacer2Q)

	if lru == 0 {
		t.Fatalf("sweep with gap %d did not evict the hot set under LRU; the differential is vacuous", gap)
	}
	if twoQ != 0 {
		t.Fatalf("2q re-faulted hot pages %d times during the sweep, want 0 (lru: %d)", twoQ, lru)
	}
	if clock > lru {
		t.Fatalf("clock re-faulted hot pages %d times, want no more than lru's %d", clock, lru)
	}
	if clockSaves == 0 || twoQSaves == 0 {
		t.Fatalf("scan sweep produced no saves: clock=%d 2q=%d", clockSaves, twoQSaves)
	}
}

// Pinned pages must never be victims, under any policy, even when every
// other frame has been evicted many times over.
func TestReplacerPinSafety(t *testing.T) {
	for _, name := range allReplacers {
		t.Run(name, func(t *testing.T) {
			bp := newPolicyPool(t, 4, name)
			// Pin three pages and write a marker into each.
			var pinned []PageID
			for i := 0; i < 3; i++ {
				id, buf, err := bp.NewPage()
				if err != nil {
					t.Fatal(err)
				}
				buf[0] = byte(0xC0 + i)
				pinned = append(pinned, id)
			}
			// Churn many pages through the single remaining frame.
			for i := 0; i < 32; i++ {
				id, _, err := bp.NewPage()
				if err != nil {
					t.Fatalf("churn %d: %v", i, err)
				}
				if err := bp.Unpin(id, true); err != nil {
					t.Fatal(err)
				}
			}
			// With all frames pinned, the pool must refuse, not evict.
			for i := 0; i < 1; i++ {
				id, _, err := bp.NewPage() // occupies the last frame
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := bp.NewPage(); !errors.Is(err, ErrBufferPoolFull) {
					t.Fatalf("full pool: err = %v, want ErrBufferPoolFull", err)
				}
				if err := bp.Unpin(id, false); err != nil {
					t.Fatal(err)
				}
			}
			// The pinned pages kept their frames and contents throughout.
			for i, id := range pinned {
				buf, err := bp.FetchPage(id)
				if err != nil {
					t.Fatal(err)
				}
				if buf[0] != byte(0xC0+i) {
					t.Fatalf("pinned page %v lost its contents: %#x", id, buf[0])
				}
				if err := bp.Unpin(id, false); err != nil { // fetch pin
					t.Fatal(err)
				}
				if err := bp.Unpin(id, false); err != nil { // original pin
					t.Fatal(err)
				}
			}
			if n := bp.PinnedPages(); n != 0 {
				t.Fatalf("%d pages still pinned", n)
			}
		})
	}
}

// Concurrent fetch/unpin stress, meant to run under -race: four
// goroutines hammer a pool smaller than the page set, so every policy's
// bookkeeping runs under real eviction pressure.
func TestReplacerConcurrentStress(t *testing.T) {
	const (
		goroutines = 4
		pages      = 48
		frames     = 16
		iters      = 400
	)
	for _, name := range allReplacers {
		t.Run(name, func(t *testing.T) {
			bp := newPolicyPool(t, frames, name)
			ids := make([]PageID, pages)
			for i := range ids {
				id, buf, err := bp.NewPage()
				if err != nil {
					t.Fatal(err)
				}
				buf[0], buf[1] = byte(i), byte(i>>8)
				if err := bp.Unpin(id, true); err != nil {
					t.Fatal(err)
				}
				ids[i] = id
			}
			var wg sync.WaitGroup
			errCh := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						n := rng.Intn(pages)
						buf, err := bp.FetchPage(ids[n])
						if err != nil {
							if errors.Is(err, ErrBufferPoolFull) {
								continue // transient: all frames pinned by peers
							}
							errCh <- err
							return
						}
						if buf[0] != byte(n) || buf[1] != byte(n>>8) {
							errCh <- fmt.Errorf("page %d corrupt: %#x %#x", n, buf[0], buf[1])
							return
						}
						if err := bp.Unpin(ids[n], false); err != nil {
							errCh <- err
							return
						}
					}
				}(int64(g) + 7)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if n := bp.PinnedPages(); n != 0 {
				t.Fatalf("%d pages still pinned after stress", n)
			}
		})
	}
}

// Restore must put a failed eviction back at the most-evictable spot so
// the pool retries it, and must not lose track of the frame.
func TestReplacerRestore(t *testing.T) {
	for _, name := range allReplacers {
		t.Run(name, func(t *testing.T) {
			rep, err := NewReplacer(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				rep.Unpin(i, PageID(100+i))
			}
			v := rep.Victim()
			if v < 0 {
				t.Fatal("no victim")
			}
			rep.Restore(v, PageID(100+v))
			seen := map[int]bool{}
			for i := 0; i < 4; i++ {
				w := rep.Victim()
				if w < 0 {
					t.Fatalf("lost a frame after Restore: only %d victims", i)
				}
				if seen[w] {
					t.Fatalf("frame %d evicted twice", w)
				}
				seen[w] = true
			}
			if rep.Victim() != -1 {
				t.Fatal("empty replacer yielded a victim")
			}
		})
	}
}
