package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Stats counts the physical and logical page traffic through a buffer
// pool. The benchmark harness reads deltas of these counters around each
// query, since page I/O is what drives the crossovers the paper reports.
type Stats struct {
	LogicalReads  uint64 // buffer pool fetches
	PhysicalReads uint64 // fetches that missed and went to disk
	PageWrites    uint64 // dirty pages written back to disk
	Allocations   uint64 // pages allocated
	Evictions     uint64 // frames reclaimed by the replacer
	ReplacerSaves uint64 // hot frames the replacer spared from scan pressure
}

// Sub returns s - o, counter by counter.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads:  s.LogicalReads - o.LogicalReads,
		PhysicalReads: s.PhysicalReads - o.PhysicalReads,
		PageWrites:    s.PageWrites - o.PageWrites,
		Allocations:   s.Allocations - o.Allocations,
		Evictions:     s.Evictions - o.Evictions,
		ReplacerSaves: s.ReplacerSaves - o.ReplacerSaves,
	}
}

// Hits reports the logical reads served from memory.
func (s Stats) Hits() uint64 { return s.LogicalReads - s.PhysicalReads }

// HitRate reports the fraction of logical reads served from memory.
func (s Stats) HitRate() float64 {
	if s.LogicalReads == 0 {
		return 1
	}
	return 1 - float64(s.PhysicalReads)/float64(s.LogicalReads)
}

func (s Stats) String() string {
	return fmt.Sprintf("logical=%d physical=%d writes=%d alloc=%d hit=%.3f",
		s.LogicalReads, s.PhysicalReads, s.PageWrites, s.Allocations, s.HitRate())
}

// Instrument registers the pool's counters on a metrics registry and
// turns on the physical-read latency histogram. Callback counters read
// the pool's atomics directly, so instrumentation adds no work to the
// fetch path beyond the (miss-only) latency observation.
func (bp *BufferPool) Instrument(reg *obs.Registry) {
	reg.CounterFunc("bufferpool_logical_reads_total",
		"page fetches served by the buffer pool",
		func() int64 { return int64(bp.logicalReads.Load()) })
	reg.CounterFunc("bufferpool_physical_reads_total",
		"page fetches that missed and read the volume",
		func() int64 { return int64(bp.physicalReads.Load()) })
	reg.CounterFunc("bufferpool_hits_total",
		"page fetches served from memory",
		func() int64 { return int64(bp.logicalReads.Load() - bp.physicalReads.Load()) })
	reg.CounterFunc("bufferpool_evictions_total",
		"frames reclaimed by the replacer",
		func() int64 { return int64(bp.evictions.Load()) })
	reg.CounterFunc("bufferpool_replacer_saves_total",
		"hot frames the replacer spared from scan eviction pressure",
		func() int64 { return int64(bp.rep.Saves()) })
	reg.GaugeFunc("bufferpool_replacer",
		"replacement policy in effect (0=lru, 1=clock, 2=2q)",
		func() float64 { return float64(replacerCode(bp.rep.Name())) })
	reg.CounterFunc("bufferpool_page_writes_total",
		"dirty pages written back to the volume",
		func() int64 { return int64(bp.pageWrites.Load()) })
	reg.CounterFunc("bufferpool_allocations_total",
		"pages allocated on the volume",
		func() int64 { return int64(bp.allocations.Load()) })
	reg.GaugeFunc("bufferpool_hit_rate",
		"fraction of logical reads served from memory",
		func() float64 { return bp.Stats().HitRate() })
	reg.GaugeFunc("bufferpool_frames",
		"pool capacity in pages",
		func() float64 { return float64(len(bp.frames)) })
	bp.readLatency.Store(reg.Histogram("bufferpool_read_seconds",
		"physical page read latency", nil))
}

// readPage reads a page from the volume, observing the latency when the
// pool is instrumented.
func (bp *BufferPool) readPage(id PageID, buf []byte) error {
	h := bp.readLatency.Load()
	if h == nil {
		return bp.disk.ReadPage(id, buf)
	}
	start := time.Now()
	err := bp.disk.ReadPage(id, buf)
	h.ObserveDuration(time.Since(start))
	return err
}

// frame is one buffer pool slot.
type frame struct {
	id    PageID
	data  []byte
	pins  int32
	dirty bool
}

// BufferPool caches pages over a DiskManager, replacing unpinned frames
// with a pluggable policy (LRU by default; see NewReplacer). Callers
// fetch a page, operate on its bytes, and unpin it, marking it dirty if
// modified.
//
// The pool mirrors the paper's configuration: Paradise ran with a 16 MB
// buffer pool, which is the default produced by DefaultFrames.
type BufferPool struct {
	mu     sync.Mutex
	disk   DiskManager
	frames []frame
	table  map[PageID]int // page id -> frame index
	free   []int          // indices of empty frames
	rep    Replacer       // replacement policy over unpinned frames
	logger PageLogger     // write-ahead hook, may be nil

	logicalReads  atomic.Uint64
	physicalReads atomic.Uint64
	pageWrites    atomic.Uint64
	allocations   atomic.Uint64
	evictions     atomic.Uint64

	// readLatency, when instrumented, observes the wall time of each
	// physical page read. Atomic so Instrument may run after the pool is
	// shared.
	readLatency atomic.Pointer[obs.Histogram]
}

// DefaultFrames is the number of frames in a 16 MB pool, matching the
// configuration used in the paper's experiments.
const DefaultFrames = 16 << 20 / PageSize

// PageLogger receives the image of every dirty page immediately before it
// is written to the volume, implementing the write-ahead rule. The WAL
// satisfies this interface.
type PageLogger interface {
	LogPageImage(id PageID, img []byte) error
}

// BeforeImageLogger is the optional undo extension of PageLogger: when
// the installed logger also implements it, FetchPageForWrite records the
// pre-modification image of clean pages, letting recovery roll back
// uncommitted in-place changes. The WAL satisfies this interface too.
type BeforeImageLogger interface {
	LogBeforeImage(id PageID, img []byte) error
}

// NewBufferPool creates a pool with the given number of frames over disk,
// using LRU replacement (the historical default).
func NewBufferPool(disk DiskManager, numFrames int) *BufferPool {
	bp, err := NewBufferPoolPolicy(disk, numFrames, ReplacerLRU)
	if err != nil {
		// ReplacerLRU is always valid; only an unknown name errors.
		panic(err)
	}
	return bp
}

// NewBufferPoolPolicy creates a pool with the named replacement policy
// ("lru", "clock", or "2q"; empty selects LRU).
func NewBufferPoolPolicy(disk DiskManager, numFrames int, policy string) (*BufferPool, error) {
	if numFrames <= 0 {
		numFrames = DefaultFrames
	}
	rep, err := NewReplacer(policy, numFrames)
	if err != nil {
		return nil, err
	}
	bp := &BufferPool{
		disk:   disk,
		frames: make([]frame, numFrames),
		table:  make(map[PageID]int, numFrames),
		free:   make([]int, 0, numFrames),
		rep:    rep,
	}
	for i := range bp.frames {
		bp.frames[i].id = InvalidPageID
		bp.frames[i].data = make([]byte, PageSize)
		bp.free = append(bp.free, i)
	}
	return bp, nil
}

// NumFrames reports the pool capacity in pages.
func (bp *BufferPool) NumFrames() int { return len(bp.frames) }

// ReplacerName reports the replacement policy in effect.
func (bp *BufferPool) ReplacerName() string { return bp.rep.Name() }

// SetPageLogger installs the write-ahead hook. Pass nil to disable
// logging. Must be called before the pool is shared between goroutines.
func (bp *BufferPool) SetPageLogger(l PageLogger) {
	bp.mu.Lock()
	bp.logger = l
	bp.mu.Unlock()
}

// writeBack persists a dirty frame, honouring the write-ahead rule.
// Caller holds bp.mu and f.dirty is true.
func (bp *BufferPool) writeBack(f *frame) error {
	if bp.logger != nil {
		if err := bp.logger.LogPageImage(f.id, f.data); err != nil {
			return err
		}
	}
	if err := bp.disk.WritePage(f.id, f.data); err != nil {
		return err
	}
	bp.pageWrites.Add(1)
	f.dirty = false
	return nil
}

// Disk exposes the underlying disk manager.
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() Stats {
	return Stats{
		LogicalReads:  bp.logicalReads.Load(),
		PhysicalReads: bp.physicalReads.Load(),
		PageWrites:    bp.pageWrites.Load(),
		Allocations:   bp.allocations.Load(),
		Evictions:     bp.evictions.Load(),
		ReplacerSaves: bp.rep.Saves(),
	}
}

// victim evicts the replacer's choice of unpinned frame and returns its
// index, or an error when every frame is pinned. Caller holds bp.mu.
func (bp *BufferPool) victim() (int, error) {
	if n := len(bp.free); n > 0 {
		idx := bp.free[n-1]
		bp.free = bp.free[:n-1]
		return idx, nil
	}
	idx := bp.rep.Victim()
	if idx < 0 {
		return 0, ErrBufferPoolFull
	}
	f := &bp.frames[idx]
	if f.dirty {
		if err := bp.writeBack(f); err != nil {
			// Put the frame back at the most-evictable position so it is
			// retried first once the fault clears.
			bp.rep.Restore(idx, f.id)
			return 0, err
		}
	}
	delete(bp.table, f.id)
	f.id = InvalidPageID
	bp.evictions.Add(1)
	return idx, nil
}

// FetchPage pins the page and returns its in-memory bytes. The slice
// aliases the frame and is valid until Unpin. Every FetchPage must be
// paired with exactly one Unpin.
func (bp *BufferPool) FetchPage(id PageID) ([]byte, error) {
	bp.logicalReads.Add(1)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if idx, ok := bp.table[id]; ok {
		f := &bp.frames[idx]
		if f.pins == 0 {
			bp.rep.Pin(idx)
		}
		f.pins++
		return f.data, nil
	}
	idx, err := bp.victim()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[idx]
	if err := bp.readPage(id, f.data); err != nil {
		bp.free = append(bp.free, idx)
		return nil, err
	}
	bp.physicalReads.Add(1)
	f.id = id
	f.pins = 1
	f.dirty = false
	bp.table[id] = idx
	return f.data, nil
}

// FetchPageForWrite pins the page for modification. It behaves like
// FetchPage, and additionally — when the installed logger supports undo —
// records the page's before-image the first time a clean page is taken
// for writing, so an uncommitted modification that later reaches the
// volume can be rolled back by recovery. Mutating call sites (heap,
// B-tree, fact file, superblock updates) use this; read paths use
// FetchPage.
func (bp *BufferPool) FetchPageForWrite(id PageID) ([]byte, error) {
	bp.logicalReads.Add(1)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	undo, _ := bp.logger.(BeforeImageLogger)
	if idx, ok := bp.table[id]; ok {
		f := &bp.frames[idx]
		if undo != nil && !f.dirty {
			if err := undo.LogBeforeImage(id, f.data); err != nil {
				return nil, err
			}
		}
		if f.pins == 0 {
			bp.rep.Pin(idx)
		}
		f.pins++
		return f.data, nil
	}
	idx, err := bp.victim()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[idx]
	if err := bp.readPage(id, f.data); err != nil {
		bp.free = append(bp.free, idx)
		return nil, err
	}
	bp.physicalReads.Add(1)
	if undo != nil {
		if err := undo.LogBeforeImage(id, f.data); err != nil {
			bp.free = append(bp.free, idx)
			return nil, err
		}
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	bp.table[id] = idx
	return f.data, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns its id and
// zeroed bytes.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.disk.Allocate(1)
	if err != nil {
		return InvalidPageID, nil, err
	}
	bp.allocations.Add(1)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, err := bp.victim()
	if err != nil {
		return InvalidPageID, nil, err
	}
	f := &bp.frames[idx]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	bp.table[id] = idx
	return id, f.data, nil
}

// AllocateExtent reserves n contiguous pages on disk without caching them.
// The fact file uses this to build its extents.
func (bp *BufferPool) AllocateExtent(n int) (PageID, error) {
	id, err := bp.disk.Allocate(n)
	if err != nil {
		return InvalidPageID, err
	}
	bp.allocations.Add(uint64(n))
	return id, nil
}

// Unpin releases one pin on the page, marking the frame dirty when the
// caller modified it. When the pin count reaches zero the frame becomes
// eligible for replacement.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, ok := bp.table[id]
	if !ok {
		return fmt.Errorf("storage: unpin of uncached %v", id)
	}
	f := &bp.frames[idx]
	if f.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned %v", id)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		bp.rep.Unpin(idx, id)
	}
	return nil
}

// LogDirtyPages passes the image of every dirty cached page to the
// installed page logger without writing or cleaning the pages. The commit
// protocol calls it before forcing the log, so the redo information for
// the whole operation is durable before any page reaches the volume.
// A nil logger makes this a no-op.
func (bp *BufferPool) LogDirtyPages() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.logger == nil {
		return nil
	}
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.id.Valid() && f.dirty {
			if err := bp.logger.LogPageImage(f.id, f.data); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlushPage writes the page to disk if it is cached and dirty.
func (bp *BufferPool) FlushPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, ok := bp.table[id]
	if !ok {
		return nil
	}
	f := &bp.frames[idx]
	if !f.dirty {
		return nil
	}
	return bp.writeBack(f)
}

// FlushAll writes every dirty cached page to disk.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.id.Valid() && f.dirty {
			if err := bp.writeBack(f); err != nil {
				return err
			}
		}
	}
	return bp.disk.Sync()
}

// DropAll flushes dirty pages and then empties the cache. The benchmark
// harness calls this between queries to emulate the paper's cold-cache
// protocol ("we flushed both the Unix file system buffer and the Paradise
// buffer pool before running each query").
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if !f.id.Valid() {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("storage: DropAll with %v still pinned", f.id)
		}
		if f.dirty {
			if err := bp.writeBack(f); err != nil {
				return err
			}
		}
		delete(bp.table, f.id)
		bp.rep.Remove(i)
		f.id = InvalidPageID
		f.dirty = false
		bp.free = append(bp.free, i)
	}
	return bp.disk.Sync()
}

// PinnedPages reports how many frames currently hold a pin; used by tests
// to verify pin discipline.
func (bp *BufferPool) PinnedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for i := range bp.frames {
		if bp.frames[i].id.Valid() && bp.frames[i].pins > 0 {
			n++
		}
	}
	return n
}
