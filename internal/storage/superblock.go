package storage

import (
	"bytes"
	"fmt"
)

// The superblock is page 0 of the volume. It holds a small directory of
// named roots: page ids or blob refs for the catalog and for each
// persistent object the engine creates at a fixed name.
//
// Layout:
//
//	[0:4)   magic "OLAP"
//	[4:8)   format version
//	[8:12)  number of root entries
//	[12:)   entries: 32-byte zero-padded name + 8-byte value
const (
	superMagic      = "OLAP"
	superVersion    = 1
	superCountOff   = 8
	superEntriesOff = 12
	superNameLen    = 32
	superEntrySize  = superNameLen + 8
	superMaxEntries = (PageSize - superEntriesOff) / superEntrySize
)

// Superblock provides access to the root directory on page 0.
type Superblock struct {
	bp *BufferPool
}

// OpenSuperblock validates (or, on an empty volume, initializes) page 0
// and returns an accessor.
func OpenSuperblock(bp *BufferPool) (*Superblock, error) {
	if bp.Disk().NumPages() == 0 {
		id, buf, err := bp.NewPage()
		if err != nil {
			return nil, err
		}
		if id != HeaderPageID {
			bp.Unpin(id, false)
			return nil, fmt.Errorf("storage: superblock allocated at %v, want page 0", id)
		}
		copy(buf[0:4], superMagic)
		PutUint32(buf, 4, superVersion)
		PutUint32(buf, superCountOff, 0)
		if err := bp.Unpin(id, true); err != nil {
			return nil, err
		}
		return &Superblock{bp: bp}, nil
	}
	buf, err := bp.FetchPage(HeaderPageID)
	if err != nil {
		return nil, err
	}
	ok := bytes.Equal(buf[0:4], []byte(superMagic)) && GetUint32(buf, 4) == superVersion
	if err := bp.Unpin(HeaderPageID, false); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("storage: bad superblock magic or version")
	}
	return &Superblock{bp: bp}, nil
}

// GetRoot looks up a named root. The boolean reports presence.
func (s *Superblock) GetRoot(name string) (uint64, bool, error) {
	if len(name) > superNameLen {
		return 0, false, fmt.Errorf("storage: root name %q too long", name)
	}
	buf, err := s.bp.FetchPage(HeaderPageID)
	if err != nil {
		return 0, false, err
	}
	defer s.bp.Unpin(HeaderPageID, false)
	count := int(GetUint32(buf, superCountOff))
	for i := 0; i < count; i++ {
		off := superEntriesOff + i*superEntrySize
		if rootName(buf[off:off+superNameLen]) == name {
			return GetUint64(buf, off+superNameLen), true, nil
		}
	}
	return 0, false, nil
}

// SetRoot creates or updates a named root.
func (s *Superblock) SetRoot(name string, value uint64) error {
	if len(name) > superNameLen {
		return fmt.Errorf("storage: root name %q too long", name)
	}
	buf, err := s.bp.FetchPageForWrite(HeaderPageID)
	if err != nil {
		return err
	}
	count := int(GetUint32(buf, superCountOff))
	for i := 0; i < count; i++ {
		off := superEntriesOff + i*superEntrySize
		if rootName(buf[off:off+superNameLen]) == name {
			PutUint64(buf, off+superNameLen, value)
			return s.bp.Unpin(HeaderPageID, true)
		}
	}
	if count >= superMaxEntries {
		s.bp.Unpin(HeaderPageID, false)
		return fmt.Errorf("storage: superblock root directory full (%d entries)", count)
	}
	off := superEntriesOff + count*superEntrySize
	for i := 0; i < superNameLen; i++ {
		buf[off+i] = 0
	}
	copy(buf[off:off+superNameLen], name)
	PutUint64(buf, off+superNameLen, value)
	PutUint32(buf, superCountOff, uint32(count+1))
	return s.bp.Unpin(HeaderPageID, true)
}

// Roots lists all root names in insertion order.
func (s *Superblock) Roots() ([]string, error) {
	buf, err := s.bp.FetchPage(HeaderPageID)
	if err != nil {
		return nil, err
	}
	defer s.bp.Unpin(HeaderPageID, false)
	count := int(GetUint32(buf, superCountOff))
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		off := superEntriesOff + i*superEntrySize
		names = append(names, rootName(buf[off:off+superNameLen]))
	}
	return names, nil
}

func rootName(b []byte) string {
	if i := bytes.IndexByte(b, 0); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}
