package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

func newTestPool(frames int) *BufferPool {
	return NewBufferPool(NewMemDiskManager(), frames)
}

func TestBufferPoolNewFetchUnpin(t *testing.T) {
	bp := newTestPool(4)
	id, buf, err := bp.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	buf[0] = 0x5A
	if err := bp.Unpin(id, true); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	got, err := bp.FetchPage(id)
	if err != nil {
		t.Fatalf("FetchPage: %v", err)
	}
	if got[0] != 0x5A {
		t.Fatalf("page byte = %#x, want 0x5A", got[0])
	}
	if err := bp.Unpin(id, false); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	bp := newTestPool(2)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, buf, err := bp.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		buf[0] = byte(i + 1)
		if err := bp.Unpin(id, true); err != nil {
			t.Fatalf("Unpin %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	// All five pages must survive even though only two frames exist.
	for i, id := range ids {
		buf, err := bp.FetchPage(id)
		if err != nil {
			t.Fatalf("FetchPage(%v): %v", id, err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %v byte = %d, want %d", id, buf[0], i+1)
		}
		bp.Unpin(id, false)
	}
}

func TestBufferPoolAllPinnedError(t *testing.T) {
	bp := newTestPool(2)
	var held []PageID
	for i := 0; i < 2; i++ {
		id, _, err := bp.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		held = append(held, id)
	}
	if _, _, err := bp.NewPage(); err == nil {
		t.Fatal("NewPage with all frames pinned succeeded")
	}
	for _, id := range held {
		bp.Unpin(id, false)
	}
	if _, _, err := bp.NewPage(); err != nil {
		t.Fatalf("NewPage after unpin: %v", err)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := newTestPool(2)
	if err := bp.Unpin(PageID(9), false); err == nil {
		t.Fatal("Unpin of uncached page succeeded")
	}
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	if err := bp.Unpin(id, false); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	if err := bp.Unpin(id, false); err == nil {
		t.Fatal("double Unpin succeeded")
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	bp := newTestPool(2)
	a, _, _ := bp.NewPage()
	bp.Unpin(a, true)
	b, _, _ := bp.NewPage()
	bp.Unpin(b, true)
	// Touch a so that b becomes the LRU victim.
	if _, err := bp.FetchPage(a); err != nil {
		t.Fatalf("FetchPage(a): %v", err)
	}
	bp.Unpin(a, false)
	c, _, _ := bp.NewPage()
	bp.Unpin(c, true)

	before := bp.Stats()
	if _, err := bp.FetchPage(a); err != nil { // should still be resident
		t.Fatalf("FetchPage(a): %v", err)
	}
	bp.Unpin(a, false)
	after := bp.Stats()
	if d := after.Sub(before); d.PhysicalReads != 0 {
		t.Fatalf("fetching recently-used page caused %d physical reads, want 0", d.PhysicalReads)
	}

	before = bp.Stats()
	if _, err := bp.FetchPage(b); err != nil { // must have been evicted
		t.Fatalf("FetchPage(b): %v", err)
	}
	bp.Unpin(b, false)
	after = bp.Stats()
	if d := after.Sub(before); d.PhysicalReads != 1 {
		t.Fatalf("fetching evicted page caused %d physical reads, want 1", d.PhysicalReads)
	}
}

func TestBufferPoolDropAllColdCache(t *testing.T) {
	bp := newTestPool(8)
	id, buf, _ := bp.NewPage()
	buf[7] = 0x77
	bp.Unpin(id, true)
	if err := bp.DropAll(); err != nil {
		t.Fatalf("DropAll: %v", err)
	}
	before := bp.Stats()
	got, err := bp.FetchPage(id)
	if err != nil {
		t.Fatalf("FetchPage: %v", err)
	}
	if got[7] != 0x77 {
		t.Fatal("dirty page lost by DropAll")
	}
	bp.Unpin(id, false)
	if d := bp.Stats().Sub(before); d.PhysicalReads != 1 {
		t.Fatalf("fetch after DropAll caused %d physical reads, want 1", d.PhysicalReads)
	}
}

func TestBufferPoolDropAllRefusesPinned(t *testing.T) {
	bp := newTestPool(4)
	id, _, _ := bp.NewPage()
	if err := bp.DropAll(); err == nil {
		t.Fatal("DropAll with a pinned page succeeded")
	}
	bp.Unpin(id, false)
	if err := bp.DropAll(); err != nil {
		t.Fatalf("DropAll after unpin: %v", err)
	}
}

func TestBufferPoolFlushAllPersists(t *testing.T) {
	disk := NewMemDiskManager()
	bp := NewBufferPool(disk, 4)
	id, buf, _ := bp.NewPage()
	buf[0] = 0xEE
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	raw := make([]byte, PageSize)
	if err := disk.ReadPage(id, raw); err != nil {
		t.Fatalf("disk read: %v", err)
	}
	if raw[0] != 0xEE {
		t.Fatal("FlushAll did not write the dirty page")
	}
}

func TestBufferPoolStatsHitRate(t *testing.T) {
	s := Stats{LogicalReads: 10, PhysicalReads: 2}
	if got := s.HitRate(); got != 0.8 {
		t.Fatalf("HitRate = %v, want 0.8", got)
	}
	if got := (Stats{}).HitRate(); got != 1 {
		t.Fatalf("empty HitRate = %v, want 1", got)
	}
	if s.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

func TestBufferPoolAllocateExtentContiguous(t *testing.T) {
	bp := newTestPool(4)
	// Consume page 0 so the extent starts later.
	id, _, _ := bp.NewPage()
	bp.Unpin(id, true)
	first, err := bp.AllocateExtent(10)
	if err != nil {
		t.Fatalf("AllocateExtent: %v", err)
	}
	if first != PageID(1) {
		t.Fatalf("extent starts at %v, want page 1", first)
	}
	if got := bp.Disk().NumPages(); got != 11 {
		t.Fatalf("NumPages = %d, want 11", got)
	}
	// Extent pages are fetchable through the pool.
	for p := first; p < first+10; p++ {
		if _, err := bp.FetchPage(p); err != nil {
			t.Fatalf("FetchPage(%v): %v", p, err)
		}
		bp.Unpin(p, false)
	}
}

// TestBufferPoolRandomizedConsistency drives the pool with a random
// workload against a shadow map and verifies every page read matches the
// last write, across many evictions.
func TestBufferPoolRandomizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bp := newTestPool(8)
	shadow := make(map[PageID]byte)
	var ids []PageID
	for i := 0; i < 2000; i++ {
		switch {
		case len(ids) == 0 || rng.Intn(10) == 0:
			id, buf, err := bp.NewPage()
			if err != nil {
				t.Fatalf("NewPage: %v", err)
			}
			v := byte(rng.Intn(256))
			buf[100] = v
			shadow[id] = v
			bp.Unpin(id, true)
			ids = append(ids, id)
		default:
			id := ids[rng.Intn(len(ids))]
			buf, err := bp.FetchPage(id)
			if err != nil {
				t.Fatalf("FetchPage(%v): %v", id, err)
			}
			if buf[100] != shadow[id] {
				t.Fatalf("page %v = %d, want %d", id, buf[100], shadow[id])
			}
			dirty := rng.Intn(2) == 0
			if dirty {
				v := byte(rng.Intn(256))
				buf[100] = v
				shadow[id] = v
			}
			bp.Unpin(id, dirty)
		}
	}
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pages still pinned after workload", bp.PinnedPages())
	}
}

func TestBufferPoolConcurrentFetch(t *testing.T) {
	bp := newTestPool(16)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, buf, err := bp.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		buf[0] = byte(i)
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				n := rng.Intn(len(ids))
				buf, err := bp.FetchPage(ids[n])
				if err != nil {
					errc <- err
					return
				}
				if buf[0] != byte(n) {
					errc <- fmt.Errorf("page %d holds %d", n, buf[0])
					return
				}
				if err := bp.Unpin(ids[n], false); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
