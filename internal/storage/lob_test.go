package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLOBRoundtripSizes(t *testing.T) {
	bp := newTestPool(64)
	s := NewLOBStore(bp)
	sizes := []int{0, 1, 100, PageSize - 1, PageSize, PageSize + 1,
		3 * PageSize, lobDirMaxEntries * PageSize, lobDirMaxEntries*PageSize + 5}
	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		data := make([]byte, n)
		rng.Read(data)
		ref, pages, err := s.Write(data)
		if err != nil {
			t.Fatalf("Write(%d bytes): %v", n, err)
		}
		wantData := (n + PageSize - 1) / PageSize
		wantDir := (wantData + lobDirMaxEntries - 1) / lobDirMaxEntries
		if wantDir == 0 {
			wantDir = 1
		}
		if pages != wantData+wantDir {
			t.Errorf("Write(%d bytes) used %d pages, want %d", n, pages, wantData+wantDir)
		}
		got, err := s.Read(ref)
		if err != nil {
			t.Fatalf("Read(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("roundtrip mismatch at %d bytes", n)
		}
		l, err := s.Length(ref)
		if err != nil {
			t.Fatalf("Length: %v", err)
		}
		if l != n {
			t.Fatalf("Length = %d, want %d", l, n)
		}
	}
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pages still pinned", bp.PinnedPages())
	}
}

func TestLOBInvalidRef(t *testing.T) {
	s := NewLOBStore(newTestPool(4))
	if _, err := s.Read(InvalidLOBRef); err == nil {
		t.Fatal("Read of invalid ref succeeded")
	}
	if _, err := s.Length(InvalidLOBRef); err == nil {
		t.Fatal("Length of invalid ref succeeded")
	}
	if InvalidLOBRef.Valid() {
		t.Fatal("InvalidLOBRef.Valid() = true")
	}
}

func TestLOBManyBlobsInterleaved(t *testing.T) {
	bp := newTestPool(32)
	s := NewLOBStore(bp)
	rng := rand.New(rand.NewSource(7))
	type blob struct {
		ref  LOBRef
		data []byte
	}
	var blobs []blob
	for i := 0; i < 50; i++ {
		data := make([]byte, rng.Intn(4*PageSize))
		rng.Read(data)
		ref, _, err := s.Write(data)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		blobs = append(blobs, blob{ref, data})
	}
	for i, b := range blobs {
		got, err := s.Read(b.ref)
		if err != nil {
			t.Fatalf("Read blob %d: %v", i, err)
		}
		if !bytes.Equal(got, b.data) {
			t.Fatalf("blob %d corrupted", i)
		}
	}
}

func TestLOBReadRange(t *testing.T) {
	bp := newTestPool(64)
	s := NewLOBStore(bp)
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 5*PageSize+123)
	rng.Read(data)
	ref, _, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int }{
		{0, 0},
		{0, 10},
		{0, len(data)},
		{PageSize - 5, 10},          // straddles a page boundary
		{2 * PageSize, PageSize},    // exactly one page
		{len(data) - 7, 7},          // tail
		{3*PageSize + 17, PageSize}, // inner page-crossing range
	}
	for _, c := range cases {
		got, err := s.ReadRange(ref, c.off, c.n)
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", c.off, c.n, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Fatalf("ReadRange(%d, %d) mismatch", c.off, c.n)
		}
	}
	// Ranged reads must fetch fewer pages than a full read.
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	before := bp.Stats()
	if _, err := s.ReadRange(ref, 2*PageSize, 100); err != nil {
		t.Fatal(err)
	}
	if d := bp.Stats().Sub(before); d.PhysicalReads > 2 { // directory + 1 data page
		t.Fatalf("ReadRange fetched %d pages for a 100-byte range", d.PhysicalReads)
	}
	// Errors.
	if _, err := s.ReadRange(ref, len(data)-5, 10); err == nil {
		t.Fatal("ReadRange past end succeeded")
	}
	if _, err := s.ReadRange(ref, -1, 5); err == nil {
		t.Fatal("ReadRange with negative offset succeeded")
	}
	if _, err := s.ReadRange(InvalidLOBRef, 0, 1); err == nil {
		t.Fatal("ReadRange of invalid ref succeeded")
	}
}

// Property: ReadRange agrees with Read on random ranges.
func TestLOBQuickReadRange(t *testing.T) {
	bp := newTestPool(64)
	s := NewLOBStore(bp)
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, 3*PageSize+17)
	rng.Read(data)
	ref, _, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	f := func(offRaw, nRaw uint16) bool {
		off := int(offRaw) % len(data)
		n := int(nRaw) % (len(data) - off)
		got, err := s.ReadRange(ref, off, n)
		return err == nil && bytes.Equal(got, data[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: any byte slice survives a LOB write/read cycle.
func TestLOBQuickRoundtrip(t *testing.T) {
	bp := newTestPool(64)
	s := NewLOBStore(bp)
	f := func(data []byte) bool {
		ref, _, err := s.Write(data)
		if err != nil {
			return false
		}
		got, err := s.Read(ref)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
