package storage

import (
	"container/list"
	"fmt"
	"sync/atomic"
)

// Replacer is the buffer pool's page-replacement policy over unpinned
// frames. The pool calls it with its own mutex held, so implementations
// need no locking of their own (Saves is the exception: it is read by
// Stats without the pool mutex, hence atomic).
//
// The frame-index protocol: a frame enters the replacer when its pin
// count drops to zero (Unpin), leaves when it is pinned again (Pin),
// evicted (Victim) or dropped (Remove). Restore re-inserts a frame whose
// eviction failed (dirty write-back error) at the most-evictable
// position, so the pool retries it first. The page ID accompanies Unpin
// and Restore because history-keeping policies (2Q) track identity
// across evictions.
type Replacer interface {
	// Name returns the policy name ("lru", "clock", "2q").
	Name() string
	// Unpin makes the frame evictable.
	Unpin(idx int, id PageID)
	// Pin makes the frame non-evictable (it is in use again).
	Pin(idx int)
	// Victim removes and returns the frame to evict, or -1 if none is
	// evictable.
	Victim() int
	// Restore re-inserts a frame returned by Victim at the
	// most-evictable position, after a failed eviction.
	Restore(idx int, id PageID)
	// Remove forgets the frame entirely (the pool is dropping it).
	// Removing a frame the replacer does not hold is a no-op.
	Remove(idx int)
	// Saves counts hot frames spared from a scan's eviction pressure:
	// clock second chances granted, and 2Q evictions served from the
	// scan queue while hot frames sat in the main queue.
	Saves() uint64
}

// Replacement policy names accepted by NewReplacer (and the DB option /
// olapd -replacer flag).
const (
	ReplacerLRU   = "lru"
	ReplacerClock = "clock"
	Replacer2Q    = "2q"
)

// NewReplacer builds the named replacement policy for a pool of `frames`
// frames. An empty name selects LRU, the historical default.
func NewReplacer(name string, frames int) (Replacer, error) {
	switch name {
	case "", ReplacerLRU:
		return newLRUReplacer(frames), nil
	case ReplacerClock:
		return newClockReplacer(frames), nil
	case Replacer2Q:
		return new2QReplacer(frames), nil
	default:
		return nil, fmt.Errorf("storage: unknown replacer %q (want lru, clock, or 2q)", name)
	}
}

// replacerCode maps a policy name to the numeric gauge value exported by
// Instrument.
func replacerCode(name string) int {
	switch name {
	case ReplacerClock:
		return 1
	case Replacer2Q:
		return 2
	default:
		return 0
	}
}

// lruReplacer evicts the least recently unpinned frame — the policy the
// pool hardwired before replacement became pluggable. A doubly linked
// list keeps unpinned frames in unpin order; elems[idx] locates a
// frame's node for O(1) removal on re-pin.
type lruReplacer struct {
	l     *list.List // of int frame index; front = least recent
	elems []*list.Element
}

func newLRUReplacer(frames int) *lruReplacer {
	return &lruReplacer{l: list.New(), elems: make([]*list.Element, frames)}
}

func (r *lruReplacer) Name() string { return ReplacerLRU }

func (r *lruReplacer) Unpin(idx int, _ PageID) {
	if r.elems[idx] == nil {
		r.elems[idx] = r.l.PushBack(idx)
	}
}

func (r *lruReplacer) Pin(idx int) {
	if e := r.elems[idx]; e != nil {
		r.l.Remove(e)
		r.elems[idx] = nil
	}
}

func (r *lruReplacer) Victim() int {
	e := r.l.Front()
	if e == nil {
		return -1
	}
	r.l.Remove(e)
	idx := e.Value.(int)
	r.elems[idx] = nil
	return idx
}

func (r *lruReplacer) Restore(idx int, _ PageID) {
	if r.elems[idx] == nil {
		r.elems[idx] = r.l.PushFront(idx)
	}
}

func (r *lruReplacer) Remove(idx int) { r.Pin(idx) }

func (r *lruReplacer) Saves() uint64 { return 0 }

// clockReplacer is the classic second-chance policy: a hand sweeps the
// frame array; a frame referenced since the hand last passed (its ref
// bit is set) is spared once, so one sequential sweep cannot flush pages
// that are re-referenced between hand revolutions.
type clockReplacer struct {
	state []uint8 // 0 = not held, 1 = held ref=0, 2 = held ref=1
	hand  int
	held  int
	saves atomic.Uint64
}

func newClockReplacer(frames int) *clockReplacer {
	return &clockReplacer{state: make([]uint8, frames)}
}

func (r *clockReplacer) Name() string { return ReplacerClock }

func (r *clockReplacer) Unpin(idx int, _ PageID) {
	if r.state[idx] == 0 {
		r.held++
	}
	r.state[idx] = 2
}

func (r *clockReplacer) Pin(idx int) {
	if r.state[idx] != 0 {
		r.state[idx] = 0
		r.held--
	}
}

func (r *clockReplacer) Victim() int {
	if r.held == 0 {
		return -1
	}
	for {
		i := r.hand
		r.hand++
		if r.hand == len(r.state) {
			r.hand = 0
		}
		switch r.state[i] {
		case 2:
			r.state[i] = 1 // second chance
			r.saves.Add(1)
		case 1:
			r.state[i] = 0
			r.held--
			return i
		}
	}
}

func (r *clockReplacer) Restore(idx int, _ PageID) {
	if r.state[idx] == 0 {
		r.held++
	}
	// ref=0: the failed eviction should be retried before touching
	// anything else, and the hand reaches it within one revolution.
	r.state[idx] = 1
}

func (r *clockReplacer) Remove(idx int) { r.Pin(idx) }

func (r *clockReplacer) Saves() uint64 { return r.saves.Load() }

// twoQEntry is one resident frame in a 2Q queue: the frame index plus
// the page it held when it was unpinned, recorded so an A1in eviction
// can leave the page's identity in the A1out ghost list.
type twoQEntry struct {
	idx int
	id  PageID
}

// twoQReplacer is a simplified 2Q [Johnson & Shasha, VLDB '94]: pages
// seen once sit in a FIFO scan queue (A1in) and are evicted from it
// without ever disturbing the main queue; pages re-referenced — while
// resident, or within the A1out ghost window after an A1in eviction —
// are promoted to the main LRU queue (Am). A sequential sweep therefore
// churns only A1in while the hot working set rides out the scan in Am.
type twoQReplacer struct {
	a1in  *list.List // of twoQEntry; front = oldest (FIFO)
	am    *list.List // of twoQEntry; front = least recently promoted
	elems []*list.Element
	inAm  []bool
	// hot[idx] is set when the page currently in the frame was
	// re-referenced while resident; its next Unpin promotes to Am.
	hot []bool

	// A1out: ghosts of pages evicted from A1in. A re-reference while
	// ghosted proves the page is not scan-only and earns Am on arrival.
	ghost     map[PageID]*list.Element
	ghostList *list.List // of PageID; front = oldest
	ghostCap  int

	kin   int // keep A1in at most this long while Am has victims
	saves atomic.Uint64
}

func new2QReplacer(frames int) *twoQReplacer {
	kin := frames / 4
	if kin < 1 {
		kin = 1
	}
	ghostCap := frames
	if ghostCap < 1 {
		ghostCap = 1
	}
	return &twoQReplacer{
		a1in:      list.New(),
		am:        list.New(),
		elems:     make([]*list.Element, frames),
		inAm:      make([]bool, frames),
		hot:       make([]bool, frames),
		ghost:     make(map[PageID]*list.Element, ghostCap),
		ghostList: list.New(),
		ghostCap:  ghostCap,
		kin:       kin,
	}
}

func (r *twoQReplacer) Name() string { return Replacer2Q }

func (r *twoQReplacer) Unpin(idx int, id PageID) {
	if r.elems[idx] != nil {
		return
	}
	promote := r.hot[idx]
	r.hot[idx] = false
	if ge, ok := r.ghost[id]; ok {
		promote = true
		r.ghostList.Remove(ge)
		delete(r.ghost, id)
	}
	if promote {
		r.elems[idx] = r.am.PushBack(twoQEntry{idx, id})
		r.inAm[idx] = true
	} else {
		r.elems[idx] = r.a1in.PushBack(twoQEntry{idx, id})
		r.inAm[idx] = false
	}
}

func (r *twoQReplacer) Pin(idx int) {
	if e := r.elems[idx]; e != nil {
		if r.inAm[idx] {
			r.am.Remove(e)
		} else {
			r.a1in.Remove(e)
		}
		r.elems[idx] = nil
		// Referenced again while resident: promoted on next Unpin.
		r.hot[idx] = true
	}
}

func (r *twoQReplacer) Victim() int {
	// Evict from the scan queue while it is over its target length (or
	// the main queue has nothing to give); its page becomes a ghost so a
	// prompt re-reference still earns promotion.
	if e := r.a1in.Front(); e != nil && (r.a1in.Len() > r.kin || r.am.Len() == 0) {
		r.a1in.Remove(e)
		ent := e.Value.(twoQEntry)
		r.elems[ent.idx] = nil
		r.hot[ent.idx] = false
		r.addGhost(ent.id)
		if r.am.Len() > 0 {
			r.saves.Add(1) // a hot Am frame sat out this eviction
		}
		return ent.idx
	}
	e := r.am.Front()
	if e == nil {
		return -1
	}
	r.am.Remove(e)
	ent := e.Value.(twoQEntry)
	r.elems[ent.idx] = nil
	r.hot[ent.idx] = false
	return ent.idx
}

func (r *twoQReplacer) addGhost(id PageID) {
	if _, ok := r.ghost[id]; ok {
		return
	}
	if r.ghostList.Len() >= r.ghostCap {
		oldest := r.ghostList.Front()
		r.ghostList.Remove(oldest)
		delete(r.ghost, oldest.Value.(PageID))
	}
	r.ghost[id] = r.ghostList.PushBack(id)
}

func (r *twoQReplacer) Restore(idx int, id PageID) {
	if r.elems[idx] != nil {
		return
	}
	// Most evictable: head of the scan queue. The ghost entry added by
	// the failed eviction is stale (the page never left); drop it.
	if ge, ok := r.ghost[id]; ok {
		r.ghostList.Remove(ge)
		delete(r.ghost, id)
	}
	r.elems[idx] = r.a1in.PushFront(twoQEntry{idx, id})
	r.inAm[idx] = false
}

func (r *twoQReplacer) Remove(idx int) {
	if e := r.elems[idx]; e != nil {
		if r.inAm[idx] {
			r.am.Remove(e)
		} else {
			r.a1in.Remove(e)
		}
		r.elems[idx] = nil
	}
	r.hot[idx] = false
}

func (r *twoQReplacer) Saves() uint64 { return r.saves.Load() }
