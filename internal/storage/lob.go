package storage

import (
	"fmt"
)

// Large-object (blob) storage. A blob is written once and read many
// times, which matches how the engine uses blobs: array chunks, serialized
// bitmaps, and catalog metadata are all replaced wholesale rather than
// updated in place. A blob is addressed by the page id of its first
// directory page.
//
// Directory page layout:
//
//	[0:8)   next directory page id (InvalidPageID at end of chain)
//	[8:16)  total blob length in bytes (meaningful on the first page only)
//	[16:20) number of data-page entries on this directory page
//	[20:)   data page ids, 8 bytes each
const (
	lobDirNextOff    = 0
	lobDirLenOff     = 8
	lobDirCountOff   = 16
	lobDirEntriesOff = 20
	lobDirMaxEntries = (PageSize - lobDirEntriesOff) / 8
)

// LOBRef addresses a stored blob.
type LOBRef struct {
	First PageID
}

// InvalidLOBRef is the zero reference.
var InvalidLOBRef = LOBRef{First: InvalidPageID}

// Valid reports whether the reference addresses a blob.
func (r LOBRef) Valid() bool { return r.First.Valid() }

// BlobPages returns the number of pages (directory + data) a blob of n
// bytes occupies, matching what Write reports.
func BlobPages(n int) int {
	numData := (n + PageSize - 1) / PageSize
	numDir := (numData + lobDirMaxEntries - 1) / lobDirMaxEntries
	if numDir == 0 {
		numDir = 1
	}
	return numData + numDir
}

// LOBStore reads and writes blobs through a buffer pool.
type LOBStore struct {
	bp *BufferPool
}

// NewLOBStore creates a blob store over bp.
func NewLOBStore(bp *BufferPool) *LOBStore { return &LOBStore{bp: bp} }

// Write stores data as a new blob and returns its reference and the total
// number of pages the blob occupies (directory + data).
func (s *LOBStore) Write(data []byte) (LOBRef, int, error) {
	numData := (len(data) + PageSize - 1) / PageSize
	pagesUsed := 0

	// Write the data pages first, collecting their ids.
	dataIDs := make([]PageID, 0, numData)
	for off := 0; off < len(data); off += PageSize {
		id, buf, err := s.bp.NewPage()
		if err != nil {
			return InvalidLOBRef, 0, err
		}
		n := copy(buf, data[off:])
		_ = n
		if err := s.bp.Unpin(id, true); err != nil {
			return InvalidLOBRef, 0, err
		}
		dataIDs = append(dataIDs, id)
		pagesUsed++
	}

	// Build the directory chain. The chain is created back to front so
	// each directory page can record its successor when written.
	numDir := (len(dataIDs) + lobDirMaxEntries - 1) / lobDirMaxEntries
	if numDir == 0 {
		numDir = 1 // empty blob still needs a head page for the length
	}
	next := InvalidPageID
	var first PageID
	for d := numDir - 1; d >= 0; d-- {
		id, buf, err := s.bp.NewPage()
		if err != nil {
			return InvalidLOBRef, 0, err
		}
		lo := d * lobDirMaxEntries
		hi := lo + lobDirMaxEntries
		if hi > len(dataIDs) {
			hi = len(dataIDs)
		}
		PutUint64(buf, lobDirNextOff, uint64(next))
		PutUint64(buf, lobDirLenOff, uint64(len(data)))
		PutUint32(buf, lobDirCountOff, uint32(hi-lo))
		for i, did := range dataIDs[lo:hi] {
			PutUint64(buf, lobDirEntriesOff+i*8, uint64(did))
		}
		if err := s.bp.Unpin(id, true); err != nil {
			return InvalidLOBRef, 0, err
		}
		next = id
		first = id
		pagesUsed++
	}
	return LOBRef{First: first}, pagesUsed, nil
}

// Length returns the stored length of the blob in bytes.
func (s *LOBStore) Length(ref LOBRef) (int, error) {
	if !ref.Valid() {
		return 0, fmt.Errorf("storage: read of invalid blob ref")
	}
	buf, err := s.bp.FetchPage(ref.First)
	if err != nil {
		return 0, err
	}
	n := int(GetUint64(buf, lobDirLenOff))
	if err := s.bp.Unpin(ref.First, false); err != nil {
		return 0, err
	}
	return n, nil
}

// Read returns the full contents of the blob.
func (s *LOBStore) Read(ref LOBRef) ([]byte, error) {
	return s.ReadInto(ref, nil)
}

// ReadRange returns n bytes of the blob starting at byte offset off,
// fetching only the directory and data pages that cover the range. The
// bitmap index uses it to retrieve a single value's bitmap without
// loading the whole index blob.
func (s *LOBStore) ReadRange(ref LOBRef, off, n int) ([]byte, error) {
	if !ref.Valid() {
		return nil, fmt.Errorf("storage: read of invalid blob ref")
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("storage: ReadRange(%d, %d)", off, n)
	}
	out := make([]byte, 0, n)
	dir := ref.First
	length := -1
	pageIdx := 0 // index of the first data page on this directory page
	for dir.Valid() && len(out) < n {
		buf, err := s.bp.FetchPage(dir)
		if err != nil {
			return nil, err
		}
		if length < 0 {
			length = int(GetUint64(buf, lobDirLenOff))
			if off+n > length {
				s.bp.Unpin(dir, false)
				return nil, fmt.Errorf("storage: ReadRange past blob end (%d+%d > %d)", off, n, length)
			}
		}
		count := int(GetUint32(buf, lobDirCountOff))
		ids := make([]PageID, count)
		for i := 0; i < count; i++ {
			ids[i] = PageID(GetUint64(buf, lobDirEntriesOff+i*8))
		}
		next := PageID(GetUint64(buf, lobDirNextOff))
		if err := s.bp.Unpin(dir, false); err != nil {
			return nil, err
		}
		for i, did := range ids {
			pageStart := (pageIdx + i) * PageSize
			pageEnd := pageStart + PageSize
			if pageEnd <= off || pageStart >= off+n {
				continue
			}
			dbuf, err := s.bp.FetchPage(did)
			if err != nil {
				return nil, err
			}
			lo := 0
			if off > pageStart {
				lo = off - pageStart
			}
			hi := PageSize
			if off+n < pageEnd {
				hi = off + n - pageStart
			}
			out = append(out, dbuf[lo:hi]...)
			if err := s.bp.Unpin(did, false); err != nil {
				return nil, err
			}
		}
		pageIdx += count
		dir = next
	}
	if len(out) != n {
		return nil, fmt.Errorf("storage: ReadRange got %d of %d bytes", len(out), n)
	}
	return out, nil
}

// ReadInto reads the blob into buf, growing it as needed, and returns the
// filled slice. Hot scan paths reuse one buffer across many blobs.
func (s *LOBStore) ReadInto(ref LOBRef, buf []byte) ([]byte, error) {
	if !ref.Valid() {
		return nil, fmt.Errorf("storage: read of invalid blob ref")
	}
	out := buf[:0]
	remaining := -1
	dir := ref.First
	for dir.Valid() {
		buf, err := s.bp.FetchPage(dir)
		if err != nil {
			return nil, err
		}
		if remaining < 0 {
			remaining = int(GetUint64(buf, lobDirLenOff))
			if cap(out) < remaining {
				out = make([]byte, 0, remaining)
			}
		}
		count := int(GetUint32(buf, lobDirCountOff))
		if count > lobDirMaxEntries {
			s.bp.Unpin(dir, false)
			return nil, fmt.Errorf("storage: corrupt blob directory %v: %d entries", dir, count)
		}
		ids := make([]PageID, count)
		for i := 0; i < count; i++ {
			ids[i] = PageID(GetUint64(buf, lobDirEntriesOff+i*8))
		}
		next := PageID(GetUint64(buf, lobDirNextOff))
		if err := s.bp.Unpin(dir, false); err != nil {
			return nil, err
		}
		for _, did := range ids {
			dbuf, err := s.bp.FetchPage(did)
			if err != nil {
				return nil, err
			}
			n := remaining
			if n > PageSize {
				n = PageSize
			}
			out = append(out, dbuf[:n]...)
			remaining -= n
			if err := s.bp.Unpin(did, false); err != nil {
				return nil, err
			}
		}
		dir = next
	}
	if remaining > 0 {
		return nil, fmt.Errorf("storage: blob truncated, %d bytes missing", remaining)
	}
	return out, nil
}
