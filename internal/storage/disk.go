package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskManager moves pages between memory and stable storage. All
// implementations must be safe for concurrent use.
type DiskManager interface {
	// ReadPage fills buf (len PageSize) with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the contents of page id.
	WritePage(id PageID, buf []byte) error
	// Allocate reserves n new contiguous pages and returns the first id.
	Allocate(n int) (PageID, error)
	// NumPages reports how many pages have been allocated.
	NumPages() uint64
	// Sync flushes any buffered writes to stable storage.
	Sync() error
	// Close releases resources held by the manager.
	Close() error
}

// FileDiskManager stores pages in a single operating-system file, the
// equivalent of a SHORE volume.
type FileDiskManager struct {
	mu    sync.Mutex
	file  *os.File
	pages uint64
}

var _ DiskManager = (*FileDiskManager)(nil)

// OpenFileDiskManager opens (creating if necessary) a database file.
func OpenFileDiskManager(path string) (*FileDiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s has size %d, not a multiple of the page size", path, st.Size())
	}
	return &FileDiskManager{file: f, pages: uint64(st.Size() / PageSize)}, nil
}

// ReadPage implements DiskManager.
func (d *FileDiskManager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrShortPage
	}
	d.mu.Lock()
	allocated := uint64(id) < d.pages
	d.mu.Unlock()
	if !allocated {
		return fmt.Errorf("%w: %v", ErrPageNotAllocated, id)
	}
	_, err := d.file.ReadAt(buf, int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("storage: read %v: %w", id, err)
	}
	return nil
}

// WritePage implements DiskManager.
func (d *FileDiskManager) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrShortPage
	}
	d.mu.Lock()
	allocated := uint64(id) < d.pages
	d.mu.Unlock()
	if !allocated {
		return fmt.Errorf("%w: %v", ErrPageNotAllocated, id)
	}
	if _, err := d.file.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write %v: %w", id, err)
	}
	return nil
}

// Allocate implements DiskManager. Pages come back zero-filled because the
// file is extended rather than rewritten.
func (d *FileDiskManager) Allocate(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPageID, fmt.Errorf("storage: allocate %d pages", n)
	}
	d.mu.Lock()
	first := d.pages
	d.pages += uint64(n)
	newSize := int64(d.pages) * PageSize
	d.mu.Unlock()
	if err := d.file.Truncate(newSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: extend to %d pages: %w", d.pages, err)
	}
	return PageID(first), nil
}

// NumPages implements DiskManager.
func (d *FileDiskManager) NumPages() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Sync implements DiskManager.
func (d *FileDiskManager) Sync() error { return d.file.Sync() }

// Close implements DiskManager.
func (d *FileDiskManager) Close() error { return d.file.Close() }

// MemDiskManager keeps pages in memory. It is used by tests and by
// benchmarks that want to isolate CPU cost from the file system, and it
// still counts page transfers so I/O behaviour remains observable.
type MemDiskManager struct {
	mu    sync.Mutex
	pages [][]byte
}

var _ DiskManager = (*MemDiskManager)(nil)

// NewMemDiskManager returns an empty in-memory volume.
func NewMemDiskManager() *MemDiskManager { return &MemDiskManager{} }

// ReadPage implements DiskManager.
func (d *MemDiskManager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrShortPage
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(id) >= uint64(len(d.pages)) {
		return fmt.Errorf("%w: %v", ErrPageNotAllocated, id)
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements DiskManager.
func (d *MemDiskManager) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrShortPage
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(id) >= uint64(len(d.pages)) {
		return fmt.Errorf("%w: %v", ErrPageNotAllocated, id)
	}
	copy(d.pages[id], buf)
	return nil
}

// Allocate implements DiskManager.
func (d *MemDiskManager) Allocate(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPageID, fmt.Errorf("storage: allocate %d pages", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	first := PageID(len(d.pages))
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, make([]byte, PageSize))
	}
	return first, nil
}

// NumPages implements DiskManager.
func (d *MemDiskManager) NumPages() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint64(len(d.pages))
}

// Sync implements DiskManager.
func (d *MemDiskManager) Sync() error { return nil }

// Close implements DiskManager.
func (d *MemDiskManager) Close() error { return nil }
