package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func testDiskManagers(t *testing.T, f func(t *testing.T, d DiskManager)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		f(t, NewMemDiskManager())
	})
	t.Run("file", func(t *testing.T) {
		d, err := OpenFileDiskManager(filepath.Join(t.TempDir(), "vol.db"))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer d.Close()
		f(t, d)
	})
}

func TestDiskAllocateReadWrite(t *testing.T) {
	testDiskManagers(t, func(t *testing.T, d DiskManager) {
		if got := d.NumPages(); got != 0 {
			t.Fatalf("NumPages on empty volume = %d, want 0", got)
		}
		first, err := d.Allocate(3)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if first != 0 {
			t.Fatalf("first allocation = %v, want page 0", first)
		}
		if got := d.NumPages(); got != 3 {
			t.Fatalf("NumPages = %d, want 3", got)
		}

		out := make([]byte, PageSize)
		for i := byte(0); i < 3; i++ {
			buf := bytes.Repeat([]byte{i + 1}, PageSize)
			if err := d.WritePage(PageID(i), buf); err != nil {
				t.Fatalf("WritePage(%d): %v", i, err)
			}
			if err := d.ReadPage(PageID(i), out); err != nil {
				t.Fatalf("ReadPage(%d): %v", i, err)
			}
			if !bytes.Equal(out, buf) {
				t.Fatalf("page %d roundtrip mismatch", i)
			}
		}
	})
}

func TestDiskFreshPagesAreZero(t *testing.T) {
	testDiskManagers(t, func(t *testing.T, d DiskManager) {
		id, err := d.Allocate(2)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		buf := make([]byte, PageSize)
		zero := make([]byte, PageSize)
		for p := id; p < id+2; p++ {
			if err := d.ReadPage(p, buf); err != nil {
				t.Fatalf("ReadPage(%v): %v", p, err)
			}
			if !bytes.Equal(buf, zero) {
				t.Fatalf("fresh page %v not zero-filled", p)
			}
		}
	})
}

func TestDiskOutOfRangeErrors(t *testing.T) {
	testDiskManagers(t, func(t *testing.T, d DiskManager) {
		buf := make([]byte, PageSize)
		if err := d.ReadPage(5, buf); err == nil {
			t.Fatal("ReadPage past end succeeded, want error")
		}
		if err := d.WritePage(5, buf); err == nil {
			t.Fatal("WritePage past end succeeded, want error")
		}
	})
}

func TestDiskShortBufferErrors(t *testing.T) {
	testDiskManagers(t, func(t *testing.T, d DiskManager) {
		if _, err := d.Allocate(1); err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		short := make([]byte, 16)
		if err := d.ReadPage(0, short); err == nil {
			t.Fatal("ReadPage with short buffer succeeded")
		}
		if err := d.WritePage(0, short); err == nil {
			t.Fatal("WritePage with short buffer succeeded")
		}
	})
}

func TestDiskAllocateRejectsNonPositive(t *testing.T) {
	testDiskManagers(t, func(t *testing.T, d DiskManager) {
		if _, err := d.Allocate(0); err == nil {
			t.Fatal("Allocate(0) succeeded")
		}
		if _, err := d.Allocate(-1); err == nil {
			t.Fatal("Allocate(-1) succeeded")
		}
	})
}

func TestFileDiskPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.db")
	d, err := OpenFileDiskManager(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := d.Allocate(2); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := bytes.Repeat([]byte{0xAB}, PageSize)
	if err := d.WritePage(1, want); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := OpenFileDiskManager(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if got := d2.NumPages(); got != 2 {
		t.Fatalf("NumPages after reopen = %d, want 2", got)
	}
	buf := make([]byte, PageSize)
	if err := d2.ReadPage(1, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("page contents lost across reopen")
	}
}

func TestPageIDString(t *testing.T) {
	if got := PageID(7).String(); got != "page(7)" {
		t.Errorf("PageID(7).String() = %q", got)
	}
	if got := InvalidPageID.String(); got != "page(<invalid>)" {
		t.Errorf("InvalidPageID.String() = %q", got)
	}
	if InvalidPageID.Valid() {
		t.Error("InvalidPageID reports Valid")
	}
	if !PageID(0).Valid() {
		t.Error("page 0 reports invalid")
	}
}

func TestIntCodecRoundtrip(t *testing.T) {
	buf := make([]byte, 32)
	PutUint16(buf, 0, 0xBEEF)
	PutUint32(buf, 2, 0xDEADBEEF)
	PutUint64(buf, 6, 0x0123456789ABCDEF)
	PutInt64(buf, 14, -42)
	if GetUint16(buf, 0) != 0xBEEF {
		t.Error("uint16 roundtrip failed")
	}
	if GetUint32(buf, 2) != 0xDEADBEEF {
		t.Error("uint32 roundtrip failed")
	}
	if GetUint64(buf, 6) != 0x0123456789ABCDEF {
		t.Error("uint64 roundtrip failed")
	}
	if GetInt64(buf, 14) != -42 {
		t.Error("int64 roundtrip failed")
	}
}
