package repro

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

var errCompactFault = errors.New("injected compaction fault")

// armedFaultDisk wraps the volume and, once armed, fails every write
// after a countdown — the "disk dies mid-compaction" scenario. Reads
// always succeed so the crashed database can still be examined.
type armedFaultDisk struct {
	inner   storage.DiskManager
	armed   atomic.Bool
	counter atomic.Int64
}

func (d *armedFaultDisk) tick() error {
	if !d.armed.Load() {
		return nil
	}
	if d.counter.Add(-1) < 0 {
		return errCompactFault
	}
	return nil
}

func (d *armedFaultDisk) ReadPage(id storage.PageID, buf []byte) error {
	return d.inner.ReadPage(id, buf)
}

func (d *armedFaultDisk) WritePage(id storage.PageID, buf []byte) error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.inner.WritePage(id, buf)
}

func (d *armedFaultDisk) Allocate(n int) (storage.PageID, error) {
	if err := d.tick(); err != nil {
		return 0, err
	}
	return d.inner.Allocate(n)
}

func (d *armedFaultDisk) NumPages() uint64 { return d.inner.NumPages() }
func (d *armedFaultDisk) Sync() error      { return d.inner.Sync() }
func (d *armedFaultDisk) Close() error     { return d.inner.Close() }

// crashCompaction loads + ingests into a file-backed database, commits
// the base, then attempts a compaction that dies at the given point —
// either a named compactTestHook stage or (stage "disk") an injected
// disk fault — and simulates a process crash. Returns the database
// path, ready to reopen.
func crashCompaction(t *testing.T, stage string, wantRows []Row) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "compactcrash.db")
	var fd *armedFaultDisk
	if stage == "disk" {
		testWrapDisk = func(inner storage.DiskManager) storage.DiskManager {
			fd = &armedFaultDisk{inner: inner}
			return fd
		}
		defer func() { testWrapDisk = nil }()
	}
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	loadRetail(t, db)
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	retailIngest(t, db)

	res, err := db.QueryOn(retailQuery, StarJoinEngine)
	if err != nil {
		t.Fatal(err)
	}
	if !core.RowsEqual(res.Rows, wantRows) {
		t.Fatalf("pre-crash rows diverge from reference: %s", core.DiffRows(res.Rows, wantRows))
	}

	if stage == "disk" {
		fd.counter.Store(2) // let a couple of writes through, then die
		fd.armed.Store(true)
	} else {
		db.compactTestHook = func(s string) error {
			if s == stage {
				return errCompactFault
			}
			return nil
		}
	}
	if err := db.Compact(); !errors.Is(err, errCompactFault) {
		t.Fatalf("Compact at %q: err = %v, want injected fault", stage, err)
	}
	if fd != nil {
		fd.armed.Store(false)
	}

	// Crash: lose the buffer pool, keep whatever reached the volume,
	// the page WAL, and the delta WAL.
	db.ds.Close()
	db.log.Close()
	db.disk.Close()
	return path
}

// TestCompactionCrashRecovery kills a compaction at every interesting
// point — after the fold, after the in-memory swap, after the durable
// commit (but before the delta drain), and via an injected disk fault —
// and checks that a reopened database answers bit-identically to an
// uncrashed one on every engine. The delta WAL's absolute cell states
// make the replay idempotent whichever side of the commit the crash
// landed on.
func TestCompactionCrashRecovery(t *testing.T) {
	ref, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	loadRetail(t, ref)
	retailIngest(t, ref)
	want, err := ref.QueryOn(retailQuery, StarJoinEngine)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, err := ref.QueryOn(retailSelectQuery, BitmapEngine)
	if err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{"applied", "swapped", "committed", "disk"} {
		t.Run(stage, func(t *testing.T) {
			path := crashCompaction(t, stage, want.Rows)
			db, err := Open(Options{Path: path})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db.Close()
			for _, eng := range []Engine{ArrayEngine, StarJoinEngine} {
				res, err := db.QueryOn(retailQuery, eng)
				if err != nil {
					t.Fatalf("%v after crash: %v", eng, err)
				}
				if !core.RowsEqual(res.Rows, want.Rows) {
					t.Fatalf("%v after crash at %q: %s", eng, stage,
						core.DiffRows(res.Rows, want.Rows))
				}
			}
			res, err := db.QueryOn(retailSelectQuery, BitmapEngine)
			if err != nil {
				t.Fatalf("bitmap after crash: %v", err)
			}
			if !core.RowsEqual(res.Rows, wantSel.Rows) {
				t.Fatalf("bitmap after crash at %q: %s", stage,
					core.DiffRows(res.Rows, wantSel.Rows))
			}
			// A compaction over the recovered state must also converge.
			if err := db.Compact(); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
			res2, err := db.QueryOn(retailQuery, StarJoinEngine)
			if err != nil {
				t.Fatal(err)
			}
			if !core.RowsEqual(res2.Rows, want.Rows) {
				t.Fatalf("post-recovery compact at %q: %s", stage,
					core.DiffRows(res2.Rows, want.Rows))
			}
		})
	}
}
