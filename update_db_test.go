package repro

import (
	"path/filepath"
	"testing"
)

func TestDBUpdateArrayCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "upd.db")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	loadRetail(t, db)

	before, err := db.QueryOn(retailQuery, ArrayEngine)
	if err != nil {
		t.Fatal(err)
	}
	var totalBefore int64
	for _, r := range before.Rows {
		totalBefore += r.Sum
	}

	// Overwrite one cell (+100), insert one (+50), delete one (cell
	// (0,0,0) has measure 0, so deleting it shifts counts not sums).
	v400, ok, err := db.ArrayGet([]int64{4, 0, 0})
	if err != nil || !ok {
		t.Fatalf("seed cell missing: %v", err)
	}
	if err := db.UpdateArrayCells([]ArrayCellUpdate{
		{Keys: []int64{4, 0, 0}, Value: v400 + 100},
		{Keys: []int64{1, 0, 0}, Value: 50}, // (1+0+0)%4 != 0: insert
		{Keys: []int64{0, 0, 0}, Delete: true},
	}); err != nil {
		t.Fatalf("UpdateArrayCells: %v", err)
	}

	after, err := db.QueryOn(retailQuery, ArrayEngine)
	if err != nil {
		t.Fatal(err)
	}
	var totalAfter, countAfter int64
	for _, r := range after.Rows {
		totalAfter += r.Sum
		countAfter += r.Count
	}
	var countBefore int64
	for _, r := range before.Rows {
		countBefore += r.Count
	}
	if totalAfter != totalBefore+150 {
		t.Fatalf("total after update = %d, want %d", totalAfter, totalBefore+150)
	}
	if countAfter != countBefore { // +1 insert, -1 delete
		t.Fatalf("count after update = %d, want %d", countAfter, countBefore)
	}

	// Updates survive commit + reopen.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, ok, err := db2.ArrayGet([]int64{1, 0, 0})
	if err != nil || !ok || v != 50 {
		t.Fatalf("inserted cell after reopen = (%d, %v, %v)", v, ok, err)
	}
	if _, ok, _ := db2.ArrayGet([]int64{0, 0, 0}); ok {
		t.Fatal("deleted cell survived reopen")
	}
}
