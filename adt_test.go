package repro

import (
	"testing"
)

func TestArrayADTFunctions(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadRetail(t, db)

	// ArrayGet: cell (0,0,0) exists in loadRetail ((p+s+t)%4==0) with
	// measure p*100+s*10+t = 0.
	v, ok, err := db.ArrayGet([]int64{0, 0, 0})
	if err != nil || !ok || v != 0 {
		t.Fatalf("ArrayGet(0,0,0) = (%d, %v, %v)", v, ok, err)
	}
	v, ok, err = db.ArrayGet([]int64{4, 0, 0})
	if err != nil || !ok || v != 400 {
		t.Fatalf("ArrayGet(4,0,0) = (%d, %v, %v)", v, ok, err)
	}
	// Invalid cell ((1,0,0): 1%4 != 0).
	if _, ok, err := db.ArrayGet([]int64{1, 0, 0}); err != nil || ok {
		t.Fatalf("ArrayGet(invalid) = (%v, %v)", ok, err)
	}
	// Unknown key.
	if _, ok, err := db.ArrayGet([]int64{99, 0, 0}); err != nil || ok {
		t.Fatalf("ArrayGet(unknown) = (%v, %v)", ok, err)
	}

	// ArraySum over the whole cube equals the SQL grand total.
	total, err := db.ArraySum([]int64{0, 0, 0}, []int64{11, 7, 5})
	if err != nil {
		t.Fatalf("ArraySum: %v", err)
	}
	res, err := db.Query(`select sum(volume) from fact`)
	if err != nil {
		t.Fatal(err)
	}
	if total != res.Rows[0].Sum {
		t.Fatalf("ArraySum = %d, SQL total = %d", total, res.Rows[0].Sum)
	}
	// Sub-box equals a manual sum.
	sub, err := db.ArraySum([]int64{2, 1, 0}, []int64{5, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for p := int64(2); p <= 5; p++ {
		for s := int64(1); s <= 3; s++ {
			for tm := int64(0); tm <= 2; tm++ {
				if (p+s+tm)%4 == 0 {
					want += p*100 + s*10 + tm
				}
			}
		}
	}
	if sub != want {
		t.Fatalf("ArraySum(box) = %d, want %d", sub, want)
	}
	// Errors.
	if _, err := db.ArraySum([]int64{0}, []int64{1}); err == nil {
		t.Fatal("ArraySum with wrong arity succeeded")
	}
	if _, err := db.ArraySum([]int64{0, 0, 0}, []int64{99, 7, 5}); err == nil {
		t.Fatal("ArraySum with unknown key succeeded")
	}

	// ArraySlice along store=2.
	cells, err := db.ArraySlice("store", 2)
	if err != nil {
		t.Fatalf("ArraySlice: %v", err)
	}
	var sliceSum, wantSlice int64
	for _, c := range cells {
		if c.Keys[1] != 2 {
			t.Fatalf("slice cell with store key %d", c.Keys[1])
		}
		sliceSum += c.Value
	}
	for p := int64(0); p < 12; p++ {
		for tm := int64(0); tm < 6; tm++ {
			if (p+2+tm)%4 == 0 {
				wantSlice += p*100 + 20 + tm
			}
		}
	}
	if sliceSum != wantSlice {
		t.Fatalf("slice sum = %d, want %d", sliceSum, wantSlice)
	}
	// Unknown dimension / key.
	if _, err := db.ArraySlice("nope", 0); err == nil {
		t.Fatal("ArraySlice of unknown dimension succeeded")
	}
	if cells, err := db.ArraySlice("store", 99); err != nil || cells != nil {
		t.Fatalf("ArraySlice(unknown key) = (%v, %v)", cells, err)
	}
}
