package repro

import (
	"testing"

	"repro/internal/core"
)

func TestDBCube(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadRetail(t, db)

	cuboids, err := db.Cube(`
		select sum(volume), type, city
		from fact, product, store
		group by type, city`)
	if err != nil {
		t.Fatalf("Cube: %v", err)
	}
	if len(cuboids) != 4 { // {}, {type}, {city}, {type,city}
		t.Fatalf("cuboids = %d, want 4", len(cuboids))
	}

	// Every cuboid must match a direct query with that GROUP BY.
	for _, c := range cuboids {
		sql := "select sum(volume) from fact, product, store"
		if len(c.GroupAttrs) > 0 {
			sql += " group by " + join(c.GroupAttrs)
		}
		direct, err := db.QueryOn(sql, ArrayEngine)
		if err != nil {
			t.Fatalf("direct query for %v: %v", c.GroupAttrs, err)
		}
		if !core.RowsEqual(c.Rows, direct.Rows) {
			t.Fatalf("cuboid %v differs from direct query: %s",
				c.GroupAttrs, core.DiffRows(c.Rows, direct.Rows))
		}
	}

	// Selections are rejected.
	if _, err := db.Cube(`select sum(volume) from fact, product where type = 'x' group by category`); err == nil {
		t.Fatal("Cube with selection succeeded")
	}
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

func TestDBQueryParallel(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadRetail(t, db)

	serial, err := db.QueryOn(retailQuery, ArrayEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := db.QueryParallel(retailQuery, workers)
		if err != nil {
			t.Fatalf("QueryParallel(%d): %v", workers, err)
		}
		if !core.RowsEqual(par.Rows, serial.Rows) {
			t.Fatalf("parallel(%d) != serial: %s", workers, core.DiffRows(par.Rows, serial.Rows))
		}
		if workers > 1 && par.Plan != "array-consolidate-parallel" {
			t.Fatalf("plan = %s", par.Plan)
		}
	}
	if _, err := db.QueryParallel(retailSelectQuery, 2); err == nil {
		t.Fatal("QueryParallel with selection succeeded")
	}
}
